// The flattened-global-index lifecycle: who writes the persisted extent
// table, when readers trust it, and how operators inspect and repair it.
//
// A flattened record (index.flattened.<gen>, at the container root and so
// on the canonical backend 0 of a striped instance) is produced when the
// container's last writer closes and by plfsctl compact. Readers trust
// the newest record only after revalidating it against the backend: the
// record's embedded raw-dropping signature must match the droppings as
// they are now and no writer may hold the container open — any newer raw
// dropping or live writer silently demotes the read to the streaming
// merge. The record is written atomically (temp + rename), so a crashed
// flatten leaves at worst a dead temp file, never a half-record.
package plfs

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// flattenedPrefix names flattened global index records in the container
// root: index.flattened.<generation>.
const flattenedPrefix = "index.flattened."

func flattenedPath(container string, gen uint64) string {
	return fmt.Sprintf("%s/%s%d", container, flattenedPrefix, gen)
}

// parseFlattenedGen extracts the generation from a flattened record file
// name. Temp files and stray suffixes do not parse.
func parseFlattenedGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, flattenedPrefix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(flattenedPrefix):], 10, 64)
	return gen, err == nil
}

// SetFlattenedReads toggles the read path's use of flattened records at
// runtime (IOPathTune-style: the knob that governs metadata-rebuild cost
// is tunable on a live instance, not baked in at mount time). Disabling
// never affects correctness — reads fall back to the streaming merge —
// so operators can flip it freely while diagnosing index trouble.
func (p *FS) SetFlattenedReads(enabled bool) { p.flattenOff.Store(!enabled) }

// FlattenedReads reports whether the read path currently trusts
// flattened records.
func (p *FS) FlattenedReads() bool { return !p.flattenOff.Load() }

// rawSignature hashes the droppings' container-relative paths and sizes —
// the freshness token embedded in flattened records. It is rename- and
// copy-invariant (no mtimes, no absolute paths) while still changing
// whenever any dropping grows, shrinks, appears or disappears.
func rawSignature(container string, droppings []string, stats []posix.Stat) uint64 {
	rel := make([]string, len(droppings))
	sizes := make([]int64, len(droppings))
	for i, d := range droppings {
		rel[i] = strings.TrimPrefix(d, container+"/")
		sizes[i] = stats[i].Size
	}
	return idx.RawSignature(rel, sizes)
}

// FlattenedInfo describes one container's newest flattened record.
type FlattenedInfo struct {
	Generation uint64
	Extents    int
	Size       int64
	// Fresh reports whether the record would currently be trusted by a
	// reader: structurally valid, raw signature matching the droppings
	// now, and no live writers.
	Fresh bool
	// Err carries the parse/validation failure of a present-but-damaged
	// record (Fresh is false).
	Err error
}

// IndexHealth is the per-container metadata report behind plfsctl
// doctor: how much raw index a cold reader would have to merge, and
// whether a flattened record spares it that work.
type IndexHealth struct {
	IndexDroppings int   // raw index dropping files
	RawEntries     int64 // whole records across those droppings
	OpenWriters    int   // openhosts records (live or stale)
	Flattened      *FlattenedInfo
	StaleRecords   int // flattened records that are not the fresh newest
}

// IndexHealth inspects the container's index metadata without building
// an index.
func (p *FS) IndexHealth(path string) (IndexHealth, error) {
	if !p.IsContainer(path) {
		return IndexHealth{}, posix.ENOENT
	}
	droppings, flatGens, err := p.listIndexState(path)
	if err != nil {
		return IndexHealth{}, err
	}
	stats, err := p.statDroppings(droppings)
	if err != nil {
		return IndexHealth{}, err
	}
	h := IndexHealth{IndexDroppings: len(droppings)}
	for _, st := range stats {
		if n := (st.Size - idx.DroppingHeaderSize) / idx.EntrySize; n > 0 {
			h.RawEntries += n
		}
	}
	recs, err := p.OpenHosts(path)
	if err != nil {
		return IndexHealth{}, err
	}
	h.OpenWriters = len(recs)
	if len(flatGens) == 0 {
		return h, nil
	}
	best := flatGens[0]
	for _, g := range flatGens[1:] {
		if g > best {
			best = g
		}
	}
	info := &FlattenedInfo{Generation: best}
	raw := rawSignature(path, droppings, stats)
	if fl, err := idx.ReadFlattened(p.backend, flattenedPath(path, best)); err != nil {
		info.Err = err
	} else {
		info.Extents = len(fl.Extents)
		info.Size = fl.Size
		info.Fresh = fl.Generation == best && fl.RawSig == raw && h.OpenWriters == 0
	}
	h.Flattened = info
	h.StaleRecords = len(flatGens) - 1
	if !info.Fresh {
		h.StaleRecords++
	}
	return h, nil
}

// WriteFlattenedIndex builds the container's merged index and persists
// it as a new flattened record (plfs_flatten_index's modern form: the
// raw droppings stay untouched; only the merge result is memoised).
// Older generations are retired. The container must have no active
// writers — a record written under a live writer would be stale on
// arrival.
func (p *FS) WriteFlattenedIndex(path string) (FlattenedInfo, error) {
	if !p.IsContainer(path) {
		return FlattenedInfo{}, posix.ENOENT
	}
	if p.hasOpenWriters(path) {
		return FlattenedInfo{}, fmt.Errorf("plfs: flatten %s: container has active writers", path)
	}
	return p.writeFlattened(path)
}

// writeFlattened performs the flatten: one streaming merge, one atomic
// record write, old generations retired best-effort.
func (p *FS) writeFlattened(path string) (FlattenedInfo, error) {
	droppings, flatGens, err := p.listIndexState(path)
	if err != nil {
		return FlattenedInfo{}, err
	}
	if len(droppings) == 0 {
		return FlattenedInfo{}, fmt.Errorf("plfs: flatten %s: container has no index droppings", path)
	}
	stats, err := p.statDroppings(droppings)
	if err != nil {
		return FlattenedInfo{}, err
	}
	raw := rawSignature(path, droppings, stats)
	global, err := p.mergeIndex(droppings)
	if err != nil {
		return FlattenedInfo{}, err
	}
	gen := uint64(1)
	for _, g := range flatGens {
		if g >= gen {
			gen = g + 1
		}
	}
	fl := &idx.Flattened{
		Generation: gen,
		RawSig:     raw,
		Size:       global.Size(),
		Extents:    global.Extents(),
	}
	if err := idx.WriteFlattened(p.backend, flattenedPath(path, gen), fl); err != nil {
		return FlattenedInfo{}, err
	}
	for _, g := range flatGens {
		p.backend.Unlink(flattenedPath(path, g))
	}
	return FlattenedInfo{Generation: gen, Extents: len(fl.Extents), Size: fl.Size, Fresh: true}, nil
}

// maybeAutoFlatten writes a flattened record when the container's last
// writer has closed. Best-effort, like the meta size hints: a failed
// flatten costs the next cold open a streaming merge, nothing more.
func (p *FS) maybeAutoFlatten(path string) {
	if p.cfg.Index.DisableAutoFlatten {
		return
	}
	if p.hasOpenWriters(path) {
		return
	}
	p.writeFlattened(path)
}

// DropFlattenedIndex removes the container's flattened records (all
// generations), returning how many were unlinked. Raw droppings are
// untouched, so reads simply revert to the streaming merge. Used by
// doctor -fix on stale records it cannot refresh, and by tests forcing
// the merge path.
func (p *FS) DropFlattenedIndex(path string) (int, error) {
	if !p.IsContainer(path) {
		return 0, posix.ENOENT
	}
	_, flatGens, err := p.listIndexState(path)
	if err != nil {
		return 0, err
	}
	removed := 0
	var ferr error
	for _, g := range flatGens {
		if err := p.backend.Unlink(flattenedPath(path, g)); err != nil {
			if ferr == nil && !errors.Is(err, posix.ENOENT) {
				ferr = err
			}
			continue
		}
		removed++
	}
	if removed > 0 {
		p.invalidateIndex(path)
	}
	return removed, ferr
}
