package plfs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ldplfs/internal/plfs/readcache"
	"ldplfs/internal/posix"
)

// cacheStats snapshots the shared index cache's counters (zero value
// when the cache is disabled) — the in-package replacement for the
// retired FS.IndexCacheStats shim.
func cacheStats(p *FS) readcache.Stats {
	if p.cache == nil {
		return readcache.Stats{}
	}
	return p.cache.Stats()
}

// TestOptionsGroupedCoversEveryField pins the flat-to-grouped
// translation: every field of the deprecated Options must land in
// Grouped()'s output, so a new knob added to one surface but not the
// other fails here rather than silently defaulting.
func TestOptionsGroupedCoversEveryField(t *testing.T) {
	// A flat Options with every field set to a distinguishable non-zero
	// value.
	mem := posix.NewMemFS()
	flat := Options{
		NumHostdirs:           7,
		ReadWorkers:           3,
		IndexWorkers:          5,
		MaxReadFDs:            11,
		MaxCachedIndexes:      13,
		DisableIndexCache:     true,
		WriteWorkers:          4,
		IndexBatch:            99,
		DisableWriteSharding:  true,
		DisableAutoFlatten:    true,
		DisableFlattenedReads: true,
		MergeChunkRecords:     17,
		Stats:                 nil, // interface fields checked structurally below
		AutoTune:              true,
		TuneWindowBytes:       1 << 20,
		TuneClock:             nil,
		Backends:              []posix.FS{mem},
		Layout:                "replica-2",
		HedgeDeadline:         19,
		HedgeTimer:            nil, // func field checked structurally below
	}
	got := flat.Grouped()
	want := Config{
		Engine: EngineOptions{
			NumHostdirs: 7, ReadWorkers: 3, IndexWorkers: 5,
			WriteWorkers: 4, IndexBatch: 99, DisableWriteSharding: true,
		},
		Index: IndexOptions{
			MaxReadFDs: 11, MaxCachedIndexes: 13, DisableCache: true,
			DisableAutoFlatten: true, DisableFlattenedReads: true,
			MergeChunkRecords: 17,
		},
		Tune:     TuneOptions{Enable: true, WindowBytes: 1 << 20},
		Layout:   LayoutOptions{Layout: "replica-2", HedgeDeadline: 19},
		Backends: []posix.FS{mem},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Grouped() = %+v, want %+v", got, want)
	}

	// Field-count tripwire: the flat struct must map onto exactly the
	// grouped fields (groups' fields + Backends). If either side grows
	// without the other, the translation above needs updating too.
	flatN := reflect.TypeOf(Options{}).NumField()
	groupedN := reflect.TypeOf(EngineOptions{}).NumField() +
		reflect.TypeOf(IndexOptions{}).NumField() +
		reflect.TypeOf(TelemetryOptions{}).NumField() +
		reflect.TypeOf(TuneOptions{}).NumField() +
		reflect.TypeOf(LayoutOptions{}).NumField() +
		1 // Config.Backends
	if flatN != groupedN {
		t.Fatalf("flat Options has %d fields, grouped surface has %d — update Options.Grouped()", flatN, groupedN)
	}
}

// TestOptionsGroupReplacement checks the documented override semantics:
// a group literal passed to New replaces that whole group, later options
// win, and functional helpers touch only their own field.
func TestOptionsGroupReplacement(t *testing.T) {
	p := New(posix.NewMemFS(),
		EngineOptions{WriteWorkers: 2, IndexBatch: 10},
		IndexOptions{MaxCachedIndexes: 5},
		EngineOptions{WriteWorkers: 6}, // replaces the whole Engine group
	)
	cfg := p.Config()
	if cfg.Engine.WriteWorkers != 6 || cfg.Engine.IndexBatch != 0 {
		t.Fatalf("later EngineOptions did not replace the group: %+v", cfg.Engine)
	}
	if cfg.Index.MaxCachedIndexes != 5 {
		t.Fatalf("IndexOptions lost: %+v", cfg.Index)
	}
}

// opsScript is one randomized container workload: interleaved writes
// from several pids, syncs, reads, a truncation, and a final
// close-and-reread. Driven identically against two instances.
type opsScript struct {
	steps []scriptStep
}

type scriptStep struct {
	kind string // "write", "sync", "read", "trunc"
	pid  uint32
	off  int64
	n    int
}

func makeScript(rng *rand.Rand, steps int) opsScript {
	s := opsScript{}
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0:
			s.steps = append(s.steps, scriptStep{kind: "sync", pid: uint32(rng.Intn(3))})
		case 1:
			s.steps = append(s.steps, scriptStep{kind: "read", off: int64(rng.Intn(1 << 16)), n: 1 + rng.Intn(4096)})
		case 2:
			s.steps = append(s.steps, scriptStep{kind: "trunc", off: int64(rng.Intn(1 << 15))})
		default:
			s.steps = append(s.steps, scriptStep{
				kind: "write", pid: uint32(rng.Intn(3)),
				off: int64(rng.Intn(1 << 15)), n: 1 + rng.Intn(2048),
			})
		}
	}
	return s
}

// runScript executes the script against a fresh container on p and
// returns the container's final logical bytes plus a log of every read
// result. The data written is a pure function of (step index, offset),
// so two instances driven by the same script must agree byte-for-byte.
func runScript(t *testing.T, p *FS, path string, s opsScript) ([]byte, []byte) {
	t.Helper()
	files := map[uint32]*File{}
	openFor := func(pid uint32) *File {
		if f, ok := files[pid]; ok {
			return f
		}
		f, err := p.Open(path, posix.O_CREAT|posix.O_RDWR, pid, 0o644)
		if err != nil {
			t.Fatalf("open pid %d: %v", pid, err)
		}
		files[pid] = f
		return f
	}
	var readLog []byte
	for i, st := range s.steps {
		switch st.kind {
		case "write":
			buf := make([]byte, st.n)
			for j := range buf {
				buf[j] = byte(i*131 + j + int(st.off))
			}
			if _, err := openFor(st.pid).Write(buf, st.off, st.pid); err != nil {
				t.Fatalf("step %d write: %v", i, err)
			}
		case "sync":
			if err := openFor(st.pid).Sync(st.pid); err != nil {
				t.Fatalf("step %d sync: %v", i, err)
			}
		case "read":
			buf := make([]byte, st.n)
			n, err := openFor(0).Read(buf, st.off)
			if err != nil {
				t.Fatalf("step %d read: %v", i, err)
			}
			readLog = append(readLog, buf[:n]...)
		case "trunc":
			if err := openFor(0).Trunc(st.off); err != nil {
				t.Fatalf("step %d trunc: %v", i, err)
			}
		}
	}
	for pid, f := range files {
		if err := f.Close(pid); err != nil {
			t.Fatalf("close pid %d: %v", pid, err)
		}
	}
	// Cold re-read of the final container contents.
	f, err := p.Open(path, posix.O_RDONLY, 999, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(999)
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	final := make([]byte, size)
	if n, err := f.Read(final, 0); err != nil || int64(n) != size {
		t.Fatalf("final read: n=%d err=%v size=%d", n, err, size)
	}
	return final, readLog
}

// TestOptionsCompatDifferential drives the same randomized script
// through an instance configured with the deprecated flat Options and
// one configured with the equivalent grouped options: every read along
// the way and the final container bytes must be identical — the
// old-API-behaves-identically guarantee of the redesign.
func TestOptionsCompatDifferential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := makeScript(rng, 120)

		oldP := New(posix.NewMemFS(), Options{
			NumHostdirs: 4,
			IndexBatch:  8,
		})
		newP := New(posix.NewMemFS(),
			EngineOptions{NumHostdirs: 4, IndexBatch: 8},
		)
		oldFinal, oldReads := runScript(t, oldP, "/f", script)
		newFinal, newReads := runScript(t, newP, "/f", script)
		if !bytes.Equal(oldFinal, newFinal) {
			t.Fatalf("seed %d: final container bytes diverged (old %d bytes, new %d bytes)",
				seed, len(oldFinal), len(newFinal))
		}
		if !bytes.Equal(oldReads, newReads) {
			t.Fatalf("seed %d: interleaved read results diverged", seed)
		}
	}
}
