// Configuration surface of a PLFS instance.
//
// The public API is a functional-options constructor over four cohesive
// groups — engine fan-out (EngineOptions), index/cache behavior
// (IndexOptions), telemetry (TelemetryOptions) and the online tuner
// (TuneOptions) — plus the backend stripe set:
//
//	p := plfs.New(backend,
//	        plfs.EngineOptions{WriteWorkers: 8, IndexBatch: 512},
//	        plfs.IndexOptions{MaxCachedIndexes: 128},
//	        plfs.WithStats(plane),
//	        plfs.TuneOptions{Enable: true},
//	)
//
// Each group value passed to New replaces that whole group, so a group
// literal reads exactly like the configuration it produces. The
// pre-redesign flat Options struct remains as a one-release
// compatibility shim: it implements Option itself, so historical call
// sites — plfs.New(fs, plfs.Options{WriteWorkers: 8}) — compile and
// behave identically (see Options).
package plfs

import (
	"time"

	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs/tune"
	"ldplfs/internal/posix"
)

// EngineOptions groups the data-path knobs of the read and write
// engines: container geometry and the concurrency fan-outs. The zero
// value means "defaults" for every field.
type EngineOptions struct {
	// NumHostdirs is the number of hostdir buckets per container (PLFS
	// default is 32; tests use fewer to exercise collisions).
	NumHostdirs int

	// ReadWorkers bounds the number of concurrent preads one Read
	// scatter-gathers across data droppings. 0 picks a default from
	// GOMAXPROCS; 1 reads extents serially.
	ReadWorkers int

	// IndexWorkers bounds the number of concurrent dropping loads during
	// index reconstruction. 0 picks a default from GOMAXPROCS; 1 loads
	// droppings serially.
	IndexWorkers int

	// WriteWorkers bounds the number of concurrent pwrites one WriteV
	// fans across its segments. 0 picks a default from GOMAXPROCS; 1
	// writes segments serially.
	WriteWorkers int

	// BatchDepth bounds how many physically-contiguous extents the
	// engines coalesce into one vectored backend submission: the read
	// engine groups a scatter-gather's extents by data dropping and
	// issues up to BatchDepth segments per preadv, and WriteV coalesces
	// up to BatchDepth segments per pwritev. 0 picks DefaultBatchDepth;
	// 1 disables coalescing (one backend op per extent, the pre-vector
	// behavior — the baseline the batched benches compare against).
	BatchDepth int

	// IndexBatch is the group-flush threshold of the per-writer index
	// buffer, in records: once a writer has buffered this many index
	// records they are appended to its index dropping in one backend
	// write (no fsync), so a long run of small writes costs
	// O(writes/batch) index I/Os. 0 picks DefaultIndexBatch; negative
	// disables auto-flushing entirely (records accumulate until
	// Sync/Close/read, the pre-engine behavior).
	IndexBatch int

	// DisableWriteSharding reverts to the pre-engine write path: every
	// Write and Sync on a File takes one exclusive handle lock, so
	// writers serialize however many pids share the handle. Kept as the
	// benchmark baseline.
	DisableWriteSharding bool
}

// applyOption implements Option: the literal replaces the whole group.
func (o EngineOptions) applyOption(c *Config) { c.Engine = o }

// IndexOptions groups the metadata-path behavior: the shared read
// caches, the streaming merge and the flattened-record lifecycle.
type IndexOptions struct {
	// MaxReadFDs caps the shared cache of read-only data-dropping
	// descriptors (0 = readcache.DefaultMaxFDs). Wide containers with
	// thousands of historical writers stay bounded.
	MaxReadFDs int

	// MaxCachedIndexes caps how many containers keep a cached merged
	// index (0 = readcache.DefaultMaxContainers).
	MaxCachedIndexes int

	// DisableCache reverts to the pre-cache behavior — every File
	// handle merges and holds its own private index, and Read serializes
	// under one exclusive lock. Kept as the benchmark baseline.
	DisableCache bool

	// DisableAutoFlatten stops the instance from persisting a flattened
	// global index record when a container's last writer closes. Reads
	// still trust records written by other instances or plfsctl compact
	// (unless DisableFlattenedReads). Used by baselines, and to stage
	// deliberately stale records in tests.
	DisableAutoFlatten bool

	// DisableFlattenedReads makes the read path ignore flattened records
	// entirely — every cold build runs the streaming merge over raw
	// droppings. The setting is only the initial value; it can be toggled
	// on a live instance via SetFlattenedReads.
	DisableFlattenedReads bool

	// MergeChunkRecords bounds the records each dropping stream buffers
	// during the streaming index merge (0 = index.DefaultStreamChunk).
	// Total merge memory is droppings x MergeChunkRecords x EntrySize on
	// top of the result, independent of container history length.
	MergeChunkRecords int
}

// applyOption implements Option.
func (o IndexOptions) applyOption(c *Config) { c.Index = o }

// TelemetryOptions groups the observability wiring.
type TelemetryOptions struct {
	// Stats attaches the instance to a telemetry plane: the engines
	// report per-op counts, bytes and latency to layer "plfs" and the
	// shared index cache registers its counters on layer "readcache".
	// Nil leaves telemetry off; the data paths then pay one nil check
	// per operation and never touch the clock.
	Stats iostats.Collector
}

// applyOption implements Option.
func (o TelemetryOptions) applyOption(c *Config) { c.Telemetry = o }

// TuneOptions groups the online feedback controller
// (internal/plfs/tune).
type TuneOptions struct {
	// Enable starts the controller: ReadWorkers, WriteWorkers and
	// IndexBatch are hill-climbed from observed throughput within fixed
	// bounds (see the ladders in telemetry.go), overriding their static
	// values. Off pins the knobs to the EngineOptions fields.
	Enable bool

	// WindowBytes is the measurement window: the controller
	// re-evaluates after this many bytes have moved through the engines
	// (0 = tune.DefaultWindowBytes). Benchmarks align it with their
	// phase size so every window measures the same mix.
	WindowBytes int64

	// Clock injects the controller's clock (nil = wall clock); tests
	// use tune.ManualClock to drive deterministic climbs.
	Clock tune.Clock
}

// applyOption implements Option.
func (o TuneOptions) applyOption(c *Config) { c.Tune = o }

// LayoutOptions groups the multi-backend placement policy: which layout
// the striped composite runs (see posix.Layout) and how its replica
// read path behaves. It only takes effect together with Config.Backends.
type LayoutOptions struct {
	// Layout is the placement descriptor: "mod-n" (the default, single
	// copy, classic striping) or "replica-R" (each dropping fans out to
	// R of the N backends on write; reads fail over across replicas).
	// New panics on a descriptor that does not parse or that needs more
	// replicas than there are backends — the layout is part of the
	// container's on-disk identity, so a misconfiguration must not
	// silently degrade. Empty means "mod-n".
	Layout string

	// HedgeDeadline, under a replicated layout, races a read against
	// the next replica when the primary has not answered within the
	// deadline (tail-latency hedging). Zero disables hedging; reads
	// then fail over only on error. Size it from the backends' service
	// time — a small multiple of the expected per-op latency.
	HedgeDeadline time.Duration

	// HedgeTimer injects the hedge trigger for deterministic tests
	// (nil = wall timer). See posix.ReplicaOptions.HedgeTimer.
	HedgeTimer func(time.Duration) <-chan time.Time
}

// applyOption implements Option.
func (o LayoutOptions) applyOption(c *Config) { c.Layout = o }

// Config is the resolved configuration of an instance: the four groups
// plus the backend stripe set. A Config is itself an Option (it
// replaces everything), which is how the per-tenant service
// configuration (internal/service) reuses these exact types.
type Config struct {
	Engine    EngineOptions
	Index     IndexOptions
	Telemetry TelemetryOptions
	Tune      TuneOptions
	Layout    LayoutOptions

	// Backends stripes the instance across multiple stores: the canonical
	// container metadata (access marker, version, meta/, openhosts/)
	// lives on Backends[0] and hostdirs — hence data and index droppings
	// — distribute across all of them by hostdir number, so parallel
	// reads and writes aggregate bandwidth over independent backends.
	// When set, the backend argument to New is ignored and the instance
	// runs over posix.NewStripedFS(Backends...). A container must be
	// reopened with the same backend list it was written with.
	Backends []posix.FS
}

// applyOption implements Option.
func (o Config) applyOption(c *Config) { *c = o }

// Option is one configuration item accepted by New. The cohesive group
// structs (EngineOptions, IndexOptions, TelemetryOptions, TuneOptions),
// a whole Config, the functional helpers (WithBackends, WithStats) and
// the deprecated flat Options all implement it.
type Option interface {
	applyOption(*Config)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*Config)

func (f optionFunc) applyOption(c *Config) { f(c) }

// WithBackends stripes the instance across the listed stores (see
// Config.Backends).
func WithBackends(backends ...posix.FS) Option {
	return optionFunc(func(c *Config) { c.Backends = backends })
}

// WithStats attaches the instance to a telemetry plane (see
// TelemetryOptions.Stats).
func WithStats(stats iostats.Collector) Option {
	return optionFunc(func(c *Config) { c.Telemetry.Stats = stats })
}

// WithLayout selects the multi-backend placement descriptor (see
// LayoutOptions.Layout).
func WithLayout(descriptor string) Option {
	return optionFunc(func(c *Config) { c.Layout.Layout = descriptor })
}

// Options is the pre-redesign flat configuration surface.
//
// Deprecated: use the grouped option structs (EngineOptions,
// IndexOptions, TelemetryOptions, TuneOptions, WithBackends) with New.
// Options remains for one release as a compatibility shim: it
// implements Option by translating every flat field onto the grouped
// Config, so plfs.New(fs, plfs.Options{...}) compiles and behaves
// exactly as before the redesign.
type Options struct {
	NumHostdirs           int               // see EngineOptions.NumHostdirs
	ReadWorkers           int               // see EngineOptions.ReadWorkers
	IndexWorkers          int               // see EngineOptions.IndexWorkers
	MaxReadFDs            int               // see IndexOptions.MaxReadFDs
	MaxCachedIndexes      int               // see IndexOptions.MaxCachedIndexes
	DisableIndexCache     bool              // see IndexOptions.DisableCache
	WriteWorkers          int               // see EngineOptions.WriteWorkers
	BatchDepth            int               // see EngineOptions.BatchDepth
	IndexBatch            int               // see EngineOptions.IndexBatch
	DisableWriteSharding  bool              // see EngineOptions.DisableWriteSharding
	DisableAutoFlatten    bool              // see IndexOptions.DisableAutoFlatten
	DisableFlattenedReads bool              // see IndexOptions.DisableFlattenedReads
	MergeChunkRecords     int               // see IndexOptions.MergeChunkRecords
	Stats                 iostats.Collector // see TelemetryOptions.Stats
	AutoTune              bool              // see TuneOptions.Enable
	TuneWindowBytes       int64             // see TuneOptions.WindowBytes
	TuneClock             tune.Clock        // see TuneOptions.Clock
	Backends              []posix.FS        // see Config.Backends

	Layout        string                               // see LayoutOptions.Layout
	HedgeDeadline time.Duration                        // see LayoutOptions.HedgeDeadline
	HedgeTimer    func(time.Duration) <-chan time.Time // see LayoutOptions.HedgeTimer
}

// Grouped translates the flat fields onto the grouped Config — the
// single point where the old surface maps to the new one.
func (o Options) Grouped() Config {
	return Config{
		Engine: EngineOptions{
			NumHostdirs:          o.NumHostdirs,
			ReadWorkers:          o.ReadWorkers,
			IndexWorkers:         o.IndexWorkers,
			WriteWorkers:         o.WriteWorkers,
			BatchDepth:           o.BatchDepth,
			IndexBatch:           o.IndexBatch,
			DisableWriteSharding: o.DisableWriteSharding,
		},
		Index: IndexOptions{
			MaxReadFDs:            o.MaxReadFDs,
			MaxCachedIndexes:      o.MaxCachedIndexes,
			DisableCache:          o.DisableIndexCache,
			DisableAutoFlatten:    o.DisableAutoFlatten,
			DisableFlattenedReads: o.DisableFlattenedReads,
			MergeChunkRecords:     o.MergeChunkRecords,
		},
		Telemetry: TelemetryOptions{Stats: o.Stats},
		Tune: TuneOptions{
			Enable:      o.AutoTune,
			WindowBytes: o.TuneWindowBytes,
			Clock:       o.TuneClock,
		},
		Layout: LayoutOptions{
			Layout:        o.Layout,
			HedgeDeadline: o.HedgeDeadline,
			HedgeTimer:    o.HedgeTimer,
		},
		Backends: o.Backends,
	}
}

// applyOption implements Option (the compatibility shim): the flat
// struct replaces the whole Config, exactly as passing it to the old
// two-argument New did.
func (o Options) applyOption(c *Config) { *c = o.Grouped() }

// DefaultOptions mirror PLFS 2.x defaults.
//
// Deprecated: the zero Config already means "defaults"; call New with
// no options instead.
func DefaultOptions() Options { return Options{NumHostdirs: 32} }
