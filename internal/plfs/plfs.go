// Package plfs is a from-scratch implementation of the Parallel
// Log-structured File System's user-level library (Bent et al., SC'09) —
// the substrate LDPLFS retargets POSIX calls onto.
//
// A PLFS "file" is really a container directory:
//
//	file/                      <- the path the application sees
//	  .plfsaccess              <- marker distinguishing containers from dirs
//	  version
//	  meta/                    <- per-writer size hints dropped at close
//	  hostdir.K/               <- one bucket per host (hash of writer id)
//	    dropping.data.<pid>    <- log-structured payload, append-only
//	    dropping.index.<pid>   <- index records mapping logical->physical
//
// Every writer appends payload to its own data dropping — an N-process
// write to one logical file becomes N independent file streams (file
// partitioning) and every write is sequential in its dropping (the log
// structure). Reads merge all index droppings into a global index
// (internal/plfs/index) and scatter-gather from the data droppings.
//
// The API mirrors the C library's plfs_open/plfs_read/plfs_write semantics
// from Listing 1 of the LDPLFS paper: offsets are explicit, a writer id
// ("pid") names the dropping, and there is no implicit file pointer — that
// bookkeeping is exactly what LDPLFS (internal/core) adds on top.
package plfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

const (
	accessFile   = ".plfsaccess"
	versionFile  = "version"
	metaDir      = "meta"
	openhostsDir = "openhosts"
	versionText  = "ldplfs-go plfs container v1\n"
)

// Options configures a PLFS instance.
type Options struct {
	// NumHostdirs is the number of hostdir buckets per container (PLFS
	// default is 32; tests use fewer to exercise collisions).
	NumHostdirs int
}

// DefaultOptions mirror PLFS 2.x defaults.
func DefaultOptions() Options { return Options{NumHostdirs: 32} }

// FS is a PLFS library instance bound to a backing store. It is safe for
// concurrent use by multiple goroutines (ranks).
type FS struct {
	backend posix.FS
	opts    Options
	clock   atomic.Uint64 // container-wide write ordering
}

// New returns a PLFS instance over backend.
func New(backend posix.FS, opts Options) *FS {
	if opts.NumHostdirs <= 0 {
		opts.NumHostdirs = DefaultOptions().NumHostdirs
	}
	return &FS{backend: backend, opts: opts}
}

// Backend returns the posix layer this instance stores containers on.
func (p *FS) Backend() posix.FS { return p.backend }

func (p *FS) hostdir(path string, pid uint32) string {
	return fmt.Sprintf("%s/hostdir.%d", path, int(pid)%p.opts.NumHostdirs)
}

func dataDropping(hostdir string, pid uint32) string {
	return fmt.Sprintf("%s/dropping.data.%d", hostdir, pid)
}

func indexDropping(hostdir string, pid uint32) string {
	return fmt.Sprintf("%s/dropping.index.%d", hostdir, pid)
}

// IsContainer reports whether path names a PLFS container.
func (p *FS) IsContainer(path string) bool {
	st, err := p.backend.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	_, err = p.backend.Stat(path + "/" + accessFile)
	return err == nil
}

// CreateContainer builds an empty container at path. It is idempotent:
// concurrent creators race benignly on EEXIST, as PLFS containers do on a
// shared parallel file system.
func (p *FS) CreateContainer(path string, mode uint32) error {
	if err := p.backend.Mkdir(path, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create container %s: %w", path, err)
	}
	fd, err := p.backend.Open(path+"/"+accessFile, posix.O_CREAT|posix.O_WRONLY, mode)
	if err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create access file: %w", err)
	}
	if err == nil {
		p.backend.Close(fd)
	}
	if fd, err := p.backend.Open(path+"/"+versionFile, posix.O_CREAT|posix.O_EXCL|posix.O_WRONLY, 0o644); err == nil {
		p.backend.Write(fd, []byte(versionText))
		p.backend.Close(fd)
	}
	if err := p.backend.Mkdir(path+"/"+metaDir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create meta dir: %w", err)
	}
	if err := p.backend.Mkdir(path+"/"+openhostsDir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create openhosts dir: %w", err)
	}
	return nil
}

// markOpen drops an openhosts record for pid — PLFS's signal that a
// writer is active, so stat must not trust the meta size hints.
func (p *FS) markOpen(path string, pid uint32) {
	// Best effort, like PLFS: a missing record only makes stat cheaper.
	if err := p.backend.Mkdir(path+"/"+openhostsDir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return
	}
	name := fmt.Sprintf("%s/%s/host.%d", path, openhostsDir, pid)
	if fd, err := p.backend.Open(name, posix.O_CREAT|posix.O_WRONLY, 0o644); err == nil {
		p.backend.Close(fd)
	}
}

// clearOpen removes pid's openhosts record.
func (p *FS) clearOpen(path string, pid uint32) {
	p.backend.Unlink(fmt.Sprintf("%s/%s/host.%d", path, openhostsDir, pid))
}

// hasOpenWriters reports whether any writer holds the container open.
func (p *FS) hasOpenWriters(path string) bool {
	entries, err := p.backend.Readdir(path + "/" + openhostsDir)
	return err == nil && len(entries) > 0
}

// writer is the per-pid append state of an open file.
type writer struct {
	dataFD  int
	idxW    *idx.Writer
	physOff int64
	maxEnd  int64 // highest logical offset+len this writer produced
}

// File is an open PLFS file handle — the analogue of Plfs_fd*. A single
// File may serve several writer pids (as when LDPLFS funnels multiple
// POSIX fds onto one container) and any number of readers.
type File struct {
	fs    *FS
	path  string
	flags int

	mu      sync.Mutex
	writers map[uint32]*writer
	index   *idx.Index // lazily built; nil when stale
	dataFDs map[uint64]int
	refs    int
}

// Open opens (and with O_CREAT, creates) the container at path, returning
// a file handle. pid identifies the calling writer, as in plfs_open.
func (p *FS) Open(path string, flags int, pid uint32, mode uint32) (*File, error) {
	exists := p.IsContainer(path)
	if !exists {
		if st, err := p.backend.Stat(path); err == nil && st.IsDir() {
			return nil, posix.EISDIR
		}
		if flags&posix.O_CREAT == 0 {
			return nil, posix.ENOENT
		}
		if err := p.CreateContainer(path, mode); err != nil {
			return nil, err
		}
	} else if flags&posix.O_CREAT != 0 && flags&posix.O_EXCL != 0 {
		return nil, posix.EEXIST
	}

	f := &File{
		fs:      p,
		path:    path,
		flags:   flags,
		writers: make(map[uint32]*writer),
		dataFDs: make(map[uint64]int),
		refs:    1,
	}
	if flags&posix.O_TRUNC != 0 && flags&posix.O_ACCMODE != posix.O_RDONLY {
		if err := p.truncateContainer(path, 0); err != nil {
			f.release()
			return nil, err
		}
	}
	return f, nil
}

// Ref increments the handle's reference count (plfs_open on an already
// open Plfs_fd does the same).
func (f *File) Ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// Path returns the container path this handle refers to.
func (f *File) Path() string { return f.path }

func (f *File) getWriter(pid uint32) (*writer, error) {
	if w, ok := f.writers[pid]; ok {
		return w, nil
	}
	hostdir := f.fs.hostdir(f.path, pid)
	if err := f.fs.backend.Mkdir(hostdir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return nil, fmt.Errorf("plfs: create hostdir: %w", err)
	}
	dataPath := dataDropping(hostdir, pid)
	fd, err := f.fs.backend.Open(dataPath, posix.O_CREAT|posix.O_WRONLY|posix.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plfs: open data dropping: %w", err)
	}
	st, err := f.fs.backend.Fstat(fd)
	if err != nil {
		f.fs.backend.Close(fd)
		return nil, err
	}
	iw, err := openIndexWriter(f.fs.backend, indexDropping(hostdir, pid))
	if err != nil {
		f.fs.backend.Close(fd)
		return nil, err
	}
	w := &writer{dataFD: fd, idxW: iw, physOff: st.Size}
	f.writers[pid] = w
	f.fs.markOpen(f.path, pid)
	return w, nil
}

// openIndexWriter opens an index dropping for appending, creating it if
// necessary; re-opening an existing dropping resumes after its records.
func openIndexWriter(fs posix.FS, path string) (*idx.Writer, error) {
	if _, err := fs.Stat(path); err == nil {
		return idx.OpenWriter(fs, path)
	}
	return idx.NewWriter(fs, path)
}

// Write appends count bytes at logical offset off on behalf of pid —
// plfs_write. The payload lands at the end of pid's data dropping and one
// index record is buffered.
func (f *File) Write(buf []byte, off int64, pid uint32) (int, error) {
	if f.flags&posix.O_ACCMODE == posix.O_RDONLY {
		return 0, posix.EBADF
	}
	if off < 0 {
		return 0, posix.EINVAL
	}
	if len(buf) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w, err := f.getWriter(pid)
	if err != nil {
		return 0, err
	}
	n, err := f.fs.backend.Write(w.dataFD, buf)
	if err != nil {
		return n, fmt.Errorf("plfs: write data dropping: %w", err)
	}
	ts := f.fs.clock.Add(1)
	w.idxW.Append(idx.Entry{
		LogicalOffset:  off,
		Length:         int64(n),
		PhysicalOffset: w.physOff,
		Timestamp:      ts,
		Pid:            pid,
	})
	w.physOff += int64(n)
	if end := off + int64(n); end > w.maxEnd {
		w.maxEnd = end
	}
	f.index = nil // stale: our own writes must become visible to our reads
	return n, nil
}

// loadIndex builds (or returns the cached) global index. Caller holds f.mu.
func (f *File) loadIndex() (*idx.Index, error) {
	if f.index != nil {
		return f.index, nil
	}
	// Flush our buffered index records so they are part of the merge.
	for _, w := range f.writers {
		if err := w.idxW.Sync(); err != nil {
			return nil, err
		}
	}
	entries, err := f.fs.readAllEntries(f.path)
	if err != nil {
		return nil, err
	}
	f.index = idx.Build(entries)
	return f.index, nil
}

// readAllEntries loads every index dropping in the container.
func (p *FS) readAllEntries(path string) ([]idx.Entry, error) {
	var entries []idx.Entry
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return nil, fmt.Errorf("plfs: list container: %w", err)
	}
	for _, d := range dirs {
		if !d.IsDir || len(d.Name) < 8 || d.Name[:8] != "hostdir." {
			continue
		}
		hostdir := path + "/" + d.Name
		files, err := p.backend.Readdir(hostdir)
		if err != nil {
			return nil, err
		}
		for _, fe := range files {
			if len(fe.Name) >= 15 && fe.Name[:15] == "dropping.index." {
				es, err := idx.ReadDropping(p.backend, hostdir+"/"+fe.Name)
				if err != nil {
					return nil, err
				}
				entries = append(entries, es...)
			}
		}
	}
	return entries, nil
}

// dataFDFor returns a cached read fd for the (hostdir bucket, pid) data
// dropping. Caller holds f.mu.
func (f *File) dataFDFor(pid uint32) (int, error) {
	key := uint64(pid)
	if fd, ok := f.dataFDs[key]; ok {
		return fd, nil
	}
	path := dataDropping(f.fs.hostdir(f.path, pid), pid)
	fd, err := f.fs.backend.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return -1, fmt.Errorf("plfs: open data dropping for read: %w", err)
	}
	f.dataFDs[key] = fd
	return fd, nil
}

// Read fills buf from logical offset off — plfs_read. It scatter-gathers
// across data droppings according to the merged index; holes read as
// zeros.
func (f *File) Read(buf []byte, off int64) (int, error) {
	if f.flags&posix.O_ACCMODE == posix.O_WRONLY {
		return 0, posix.EBADF
	}
	if off < 0 {
		return 0, posix.EINVAL
	}
	if len(buf) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	index, err := f.loadIndex()
	if err != nil {
		return 0, err
	}
	extents := index.Query(off, int64(len(buf)))
	total := 0
	for _, x := range extents {
		dst := buf[x.LogicalOffset-off : x.LogicalOffset-off+x.Length]
		if x.Hole {
			for i := range dst {
				dst[i] = 0
			}
			total += len(dst)
			continue
		}
		fd, err := f.dataFDFor(x.Pid)
		if err != nil {
			return total, err
		}
		if err := posix.ReadFull(f.fs.backend, fd, dst, x.PhysicalOffset); err != nil {
			return total, fmt.Errorf("plfs: read dropping (pid %d): %w", x.Pid, err)
		}
		total += len(dst)
	}
	return total, nil
}

// Size returns the logical file size.
func (f *File) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	index, err := f.loadIndex()
	if err != nil {
		return 0, err
	}
	return index.Size(), nil
}

// Sync flushes pid's buffered index records and data — plfs_sync.
func (f *File) Sync(pid uint32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.writers[pid]
	if !ok {
		return nil
	}
	if err := w.idxW.Sync(); err != nil {
		return err
	}
	return f.fs.backend.Fsync(w.dataFD)
}

// Trunc truncates the open file — plfs_trunc on an open handle.
func (f *File) Trunc(size int64) error {
	if f.flags&posix.O_ACCMODE == posix.O_RDONLY {
		return posix.EBADF
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Flush writers so their records participate, then truncate on disk.
	for _, w := range f.writers {
		if err := w.idxW.Sync(); err != nil {
			return err
		}
	}
	if err := f.fs.truncateContainer(f.path, size); err != nil {
		return err
	}
	// Writers continue appending after the consolidated index; their
	// physical cursors remain valid because data droppings are untouched
	// only when size==0 removes them — reset in that case.
	if size == 0 {
		for pid, w := range f.writers {
			f.fs.backend.Close(w.dataFD)
			w.idxW.Close()
			delete(f.writers, pid)
		}
		for k, fd := range f.dataFDs {
			f.fs.backend.Close(fd)
			delete(f.dataFDs, k)
		}
	}
	f.index = nil
	return nil
}

// Close drops pid's writer state and decrements the handle refcount —
// plfs_close. When the last reference closes, every remaining writer is
// also torn down, size metadata is dropped into meta/ so later stats can
// avoid a full index merge, and the openhosts records are cleared.
func (f *File) Close(pid uint32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.teardownWriterLocked(pid); err != nil {
		return err
	}
	f.refs--
	if f.refs <= 0 {
		f.releaseLocked()
	}
	return nil
}

// teardownWriterLocked closes one pid's writer, drops its size hint and
// clears its openhosts record. Caller holds f.mu.
func (f *File) teardownWriterLocked(pid uint32) error {
	w, ok := f.writers[pid]
	if !ok {
		return nil
	}
	if err := w.idxW.Close(); err != nil {
		return err
	}
	if err := f.fs.backend.Close(w.dataFD); err != nil {
		return err
	}
	// Drop a metadata hint: max logical extent this writer saw.
	metaPath := fmt.Sprintf("%s/%s/size.%d", f.path, metaDir, pid)
	if fd, err := f.fs.backend.Open(metaPath, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644); err == nil {
		f.fs.backend.Write(fd, []byte(fmt.Sprintf("%d\n", w.maxEnd)))
		f.fs.backend.Close(fd)
	}
	f.fs.clearOpen(f.path, pid)
	delete(f.writers, pid)
	f.index = nil
	return nil
}

func (f *File) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.releaseLocked()
}

func (f *File) releaseLocked() {
	for k, fd := range f.dataFDs {
		f.fs.backend.Close(fd)
		delete(f.dataFDs, k)
	}
	for pid := range f.writers {
		// Full teardown (hints + openhosts), not just fd closes: the
		// handle may serve several writer pids and the last reference
		// retires all of them.
		f.teardownWriterLocked(pid)
	}
	f.index = nil
}

// Stat describes a container without opening it — plfs_getattr. It prefers
// the meta/ size hints and falls back to a full index merge when none
// exist (e.g. the container was never cleanly closed).
func (p *FS) Stat(path string) (posix.Stat, error) {
	if !p.IsContainer(path) {
		return posix.Stat{}, posix.ENOENT
	}
	st, err := p.backend.Stat(path)
	if err != nil {
		return posix.Stat{}, err
	}
	out := posix.Stat{Mode: 0o644, Nlink: 1, Ino: st.Ino, Mtime: st.Mtime}

	var size int64
	if p.hasOpenWriters(path) {
		// Active writers: the hints are stale by construction; merge the
		// on-disk index droppings for a live answer.
		entries, err := p.readAllEntries(path)
		if err != nil {
			return posix.Stat{}, err
		}
		size = idx.Build(entries).Size()
	} else {
		var ok bool
		var err error
		size, ok, err = p.metaSize(path)
		if err != nil {
			return posix.Stat{}, err
		}
		if !ok {
			entries, err := p.readAllEntries(path)
			if err != nil {
				return posix.Stat{}, err
			}
			size = idx.Build(entries).Size()
		}
	}
	out.Size = size
	return out, nil
}

// metaSize returns the size recorded by cleanly closed writers. ok is
// false when no hints exist.
func (p *FS) metaSize(path string) (int64, bool, error) {
	entries, err := p.backend.Readdir(path + "/" + metaDir)
	if err != nil {
		if errors.Is(err, posix.ENOENT) {
			return 0, false, nil
		}
		return 0, false, err
	}
	var size int64
	found := false
	for _, e := range entries {
		if e.IsDir {
			continue
		}
		fd, err := p.backend.Open(path+"/"+metaDir+"/"+e.Name, posix.O_RDONLY, 0)
		if err != nil {
			continue
		}
		buf := make([]byte, 32)
		n, _ := p.backend.Read(fd, buf)
		p.backend.Close(fd)
		var v int64
		if _, err := fmt.Sscanf(string(buf[:n]), "%d", &v); err == nil {
			found = true
			if v > size {
				size = v
			}
		}
	}
	// Meta hints under-report if a writer died before close; a writer that
	// is still active has no hint at all. Cross-check against index
	// droppings only when nothing was found.
	return size, found, nil
}

// Unlink removes a container and all its droppings — plfs_unlink.
func (p *FS) Unlink(path string) error {
	if !p.IsContainer(path) {
		return posix.ENOENT
	}
	return p.removeTree(path)
}

func (p *FS) removeTree(path string) error {
	entries, err := p.backend.Readdir(path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := path + "/" + e.Name
		if e.IsDir {
			if err := p.removeTree(child); err != nil {
				return err
			}
		} else if err := p.backend.Unlink(child); err != nil {
			return err
		}
	}
	return p.backend.Rmdir(path)
}

// Rename moves a container — plfs_rename.
func (p *FS) Rename(oldpath, newpath string) error {
	if !p.IsContainer(oldpath) {
		return posix.ENOENT
	}
	if p.IsContainer(newpath) {
		if err := p.Unlink(newpath); err != nil {
			return err
		}
	}
	return p.backend.Rename(oldpath, newpath)
}

// Truncate truncates a closed container to size — plfs_trunc.
func (p *FS) Truncate(path string, size int64) error {
	if !p.IsContainer(path) {
		return posix.ENOENT
	}
	return p.truncateContainer(path, size)
}

// truncateContainer implements truncation the way PLFS does: size zero
// removes every dropping; a partial truncate consolidates the clipped
// global index into a single replacement index dropping.
func (p *FS) truncateContainer(path string, size int64) error {
	if size < 0 {
		return posix.EINVAL
	}
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return err
	}
	if size == 0 {
		for _, d := range dirs {
			if d.IsDir && len(d.Name) >= 8 && d.Name[:8] == "hostdir." {
				if err := p.removeTree(path + "/" + d.Name); err != nil {
					return err
				}
			}
		}
		return p.clearMeta(path, 0)
	}

	entries, err := p.readAllEntries(path)
	if err != nil {
		return err
	}
	global := idx.Build(entries)
	global.Truncate(size)
	if global.Size() < size {
		global.Extend(size)
	}
	// Replace every index dropping with one consolidated dropping holding
	// the clipped extents (re-timestamped in resolved order).
	var consolidated []idx.Entry
	for i, x := range global.Extents() {
		if x.Hole {
			continue
		}
		consolidated = append(consolidated, idx.Entry{
			LogicalOffset:  x.LogicalOffset,
			Length:         x.Length,
			PhysicalOffset: x.PhysicalOffset,
			Timestamp:      uint64(i + 1),
			Pid:            x.Pid,
		})
	}
	for _, d := range dirs {
		if !d.IsDir || len(d.Name) < 8 || d.Name[:8] != "hostdir." {
			continue
		}
		hostdir := path + "/" + d.Name
		files, err := p.backend.Readdir(hostdir)
		if err != nil {
			return err
		}
		for _, fe := range files {
			if len(fe.Name) >= 15 && fe.Name[:15] == "dropping.index." {
				if err := p.backend.Unlink(hostdir + "/" + fe.Name); err != nil {
					return err
				}
			}
		}
	}
	hostdir := fmt.Sprintf("%s/hostdir.%d", path, 0)
	if err := p.backend.Mkdir(hostdir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return err
	}
	if err := idx.WriteDropping(p.backend, hostdir+"/dropping.index.trunc", consolidated); err != nil {
		return err
	}
	// A sparse tail (truncate upward) needs a zero-length sentinel so Size
	// sees the extension. Represent it with a zero-filled entry of length
	// zero is impossible; instead extend via meta hints.
	return p.clearMeta(path, size)
}

// clearMeta resets the meta hints to a single authoritative size.
func (p *FS) clearMeta(path string, size int64) error {
	metaPath := path + "/" + metaDir
	entries, err := p.backend.Readdir(metaPath)
	if err == nil {
		for _, e := range entries {
			p.backend.Unlink(metaPath + "/" + e.Name)
		}
	}
	fd, err := p.backend.Open(metaPath+"/size.trunc", posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		return nil // best effort: stat falls back to index merge
	}
	p.backend.Write(fd, []byte(fmt.Sprintf("%d\n", size)))
	p.backend.Close(fd)
	return nil
}

// CompactIndex merges every index dropping in the container into one
// consolidated dropping — plfs_flatten_index. Read opens afterwards load
// a single file instead of one per historical writer, which is PLFS's
// answer to slow first-reads on many-writer containers. The container
// must have no active writers.
func (p *FS) CompactIndex(path string) error {
	if !p.IsContainer(path) {
		return posix.ENOENT
	}
	if p.hasOpenWriters(path) {
		return fmt.Errorf("plfs: compact %s: container has active writers", path)
	}
	entries, err := p.readAllEntries(path)
	if err != nil {
		return err
	}
	global := idx.Build(entries)
	var flat []idx.Entry
	for i, x := range global.Extents() {
		if x.Hole {
			continue
		}
		flat = append(flat, idx.Entry{
			LogicalOffset:  x.LogicalOffset,
			Length:         x.Length,
			PhysicalOffset: x.PhysicalOffset,
			Timestamp:      uint64(i + 1),
			Pid:            x.Pid,
		})
	}
	// Write the consolidated dropping first, then remove the shards, so a
	// crash between the two steps leaves a readable (if redundant) index.
	hostdir := fmt.Sprintf("%s/hostdir.%d", path, 0)
	if err := p.backend.Mkdir(hostdir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return err
	}
	compacted := hostdir + "/dropping.index.flattened"
	if err := idx.WriteDropping(p.backend, compacted, flat); err != nil {
		return err
	}
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return err
	}
	for _, d := range dirs {
		if !d.IsDir || len(d.Name) < 8 || d.Name[:8] != "hostdir." {
			continue
		}
		hd := path + "/" + d.Name
		files, err := p.backend.Readdir(hd)
		if err != nil {
			return err
		}
		for _, fe := range files {
			name := hd + "/" + fe.Name
			if name == compacted {
				continue
			}
			if len(fe.Name) >= 15 && fe.Name[:15] == "dropping.index." {
				if err := p.backend.Unlink(name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// IndexDroppings counts the index dropping files in a container.
func (p *FS) IndexDroppings(path string) (int, error) {
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, d := range dirs {
		if !d.IsDir || len(d.Name) < 8 || d.Name[:8] != "hostdir." {
			continue
		}
		files, err := p.backend.Readdir(path + "/" + d.Name)
		if err != nil {
			return 0, err
		}
		for _, fe := range files {
			if len(fe.Name) >= 15 && fe.Name[:15] == "dropping.index." {
				count++
			}
		}
	}
	return count, nil
}

// Flatten materialises the container's logical contents as a plain file at
// dst on the backend — what "cp" through LDPLFS achieves, packaged as a
// utility (PLFS ships the same as plfs_flatten_index/"plfs_recover").
func (p *FS) Flatten(path, dst string) error {
	f, err := p.Open(path, posix.O_RDONLY, 0, 0)
	if err != nil {
		return err
	}
	defer f.Close(0)
	size, err := f.Size()
	if err != nil {
		return err
	}
	out, err := p.backend.Open(dst, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer p.backend.Close(out)
	const chunk = 4 << 20
	buf := make([]byte, chunk)
	for off := int64(0); off < size; {
		n := chunk
		if rem := size - off; rem < int64(n) {
			n = int(rem)
		}
		got, err := f.Read(buf[:n], off)
		if err != nil {
			return err
		}
		if got == 0 {
			break
		}
		if err := posix.WriteFull(p.backend, out, buf[:got], off); err != nil {
			return err
		}
		off += int64(got)
	}
	return p.backend.Ftruncate(out, size)
}
