// Package plfs is a from-scratch implementation of the Parallel
// Log-structured File System's user-level library (Bent et al., SC'09) —
// the substrate LDPLFS retargets POSIX calls onto.
//
// A PLFS "file" is really a container directory:
//
//	file/                      <- the path the application sees
//	  .plfsaccess              <- marker distinguishing containers from dirs
//	  version
//	  meta/                    <- per-writer size hints dropped at close
//	  hostdir.K/               <- one bucket per host (hash of writer id)
//	    dropping.data.<pid>    <- log-structured payload, append-only
//	    dropping.index.<pid>   <- index records mapping logical->physical
//
// Every writer appends payload to its own data dropping — an N-process
// write to one logical file becomes N independent file streams (file
// partitioning) and every write is sequential in its dropping (the log
// structure). Reads merge all index droppings into a global index
// (internal/plfs/index) and scatter-gather from the data droppings.
//
// The API mirrors the C library's plfs_open/plfs_read/plfs_write semantics
// from Listing 1 of the LDPLFS paper: offsets are explicit, a writer id
// ("pid") names the dropping, and there is no implicit file pointer — that
// bookkeeping is exactly what LDPLFS (internal/core) adds on top.
package plfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ldplfs/internal/iostats"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/plfs/readcache"
	"ldplfs/internal/plfs/tune"
	"ldplfs/internal/posix"
)

const (
	accessFile   = ".plfsaccess"
	versionFile  = "version"
	metaDir      = "meta"
	openhostsDir = "openhosts"
	layoutFile   = "layout.desc"
	versionText  = "ldplfs-go plfs container v1\n"
)

// DefaultIndexBatch is the per-writer index group-flush threshold used
// when EngineOptions.IndexBatch is zero. 512 records is one 24 KiB
// append per flush — large enough to amortize the backend call, small
// enough that a crashed writer loses at most a modest index tail.
const DefaultIndexBatch = 512

// DefaultBatchDepth is the vectored-submission bound used when
// EngineOptions.BatchDepth is zero: up to 64 physically-contiguous
// extents coalesce into one preadv/pwritev. 64 segments of the common
// 64 KiB strided block is a 4 MiB submission — large enough to collapse
// a wide N-1 read to one backend op per dropping, small enough to keep
// partial-failure blast radius and per-batch latency modest.
const DefaultBatchDepth = 64

// FS is a PLFS library instance bound to a backing store. It is safe for
// concurrent use by multiple goroutines (ranks).
type FS struct {
	backend posix.FS
	cfg     Config
	clock   atomic.Uint64 // container-wide write ordering

	// cache is the shared per-container merged-index cache (nil when
	// IndexOptions.DisableCache). fds is the shared read-descriptor
	// cache; both are the read-engine state shared by every File.
	cache *readcache.IndexCache
	fds   *readcache.FDCache

	// handles registers the open File handles per container, so the
	// read-fd cache can be drained when the last one closes (PLFS
	// closes data descriptors at plfs_close) and container-level
	// truncation can quiesce and rebind every handle's writers, not
	// just the one it was issued through.
	hmu     sync.Mutex
	handles map[string]map[*File]struct{}
	fileSeq uint64 // next File.seq; lock-order tiebreak for handles

	// seeded tracks containers whose on-backend timestamps this
	// instance has folded into its clock (see seedClock).
	smu    sync.Mutex
	seeded map[string]bool

	// flattenOff disables the flattened-record read path at runtime
	// (SetFlattenedReads); initialised from
	// IndexOptions.DisableFlattenedReads.
	flattenOff atomic.Bool

	// stats is the instance's engine telemetry layer (nil = off) and
	// tuner the autotune controller (nil = off); tuneBytes accumulates
	// the data-path bytes the tuner's throughput windows are cut from.
	// The knob atomics are runtime overrides the engines consult ahead
	// of the EngineOptions fields (0 = no override) — the surface the
	// tuner (and SetReadWorkers & friends) steer without a reopen.
	stats            *iostats.LayerStats
	tuner            *tune.Controller
	tuneBytes        atomic.Int64
	knobReadWorkers  atomic.Int32
	knobWriteWorkers atomic.Int32
	knobIndexBatch   atomic.Int32
	knobBatchDepth   atomic.Int32
}

// New returns a PLFS instance over backend, configured by the supplied
// options (see Option; later options override earlier ones, group by
// group). With Backends set (WithBackends, Config.Backends or the
// deprecated flat Options), backend is ignored (and may be nil) and the
// instance stripes its containers across the listed stores.
func New(backend posix.FS, opts ...Option) *FS {
	var cfg Config
	for _, o := range opts {
		o.applyOption(&cfg)
	}
	if cfg.Engine.NumHostdirs <= 0 {
		cfg.Engine.NumHostdirs = 32
	}
	if len(cfg.Backends) > 0 {
		layout, err := posix.LayoutFor(cfg.Layout.Layout, len(cfg.Backends))
		if err != nil {
			// The layout is part of the container's on-disk identity;
			// silently degrading a misconfigured one would scatter data
			// under the wrong placement rule.
			panic("plfs: " + err.Error())
		}
		backend = posix.NewLayoutFS(layout, posix.ReplicaOptions{
			HedgeDeadline: cfg.Layout.HedgeDeadline,
			HedgeTimer:    cfg.Layout.HedgeTimer,
			Stats:         cfg.Telemetry.Stats,
		}, cfg.Backends...)
	}
	p := &FS{
		backend: backend,
		cfg:     cfg,
		fds:     readcache.NewFDCache(backend, cfg.Index.MaxReadFDs),
		handles: make(map[string]map[*File]struct{}),
		seeded:  make(map[string]bool),
	}
	p.initTelemetry()
	if !cfg.Index.DisableCache {
		p.cache = readcache.NewIndexCacheWith(cfg.Index.MaxCachedIndexes, p.cacheStatsLayer())
	}
	p.flattenOff.Store(cfg.Index.DisableFlattenedReads)
	return p
}

// Config returns the instance's resolved configuration.
func (p *FS) Config() Config { return p.cfg }

// CachedReadFDs returns the number of read descriptors currently cached.
func (p *FS) CachedReadFDs() int { return p.fds.Len() }

// invalidateIndex marks path's cached merged index stale. Call after any
// operation that changes the on-backend index droppings.
func (p *FS) invalidateIndex(path string) {
	if p.cache != nil {
		p.cache.Invalidate(path)
	}
}

// dropIndex removes path's cache entry outright (unlink/rename).
func (p *FS) dropIndex(path string) {
	if p.cache != nil {
		p.cache.Drop(path)
	}
}

func (p *FS) retainContainer(path string, f *File) {
	p.hmu.Lock()
	p.fileSeq++
	f.seq = p.fileSeq
	if p.handles[path] == nil {
		p.handles[path] = make(map[*File]struct{})
	}
	p.handles[path][f] = struct{}{}
	p.hmu.Unlock()
}

func (p *FS) releaseContainer(path string, f *File) {
	p.hmu.Lock()
	delete(p.handles[path], f)
	drop := len(p.handles[path]) == 0
	if drop {
		delete(p.handles, path)
	}
	p.hmu.Unlock()
	if drop {
		p.fds.DropPrefix(path + "/")
	}
}

// openHandles snapshots the container's registered handles in lock
// order (File.seq ascending) — the deterministic order every
// cross-handle operation must acquire their locks in.
func (p *FS) openHandles(path string) []*File {
	p.hmu.Lock()
	out := make([]*File, 0, len(p.handles[path]))
	for f := range p.handles[path] {
		out = append(out, f)
	}
	p.hmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Backend returns the posix layer this instance stores containers on
// (the striped composite, for a multi-backend instance).
func (p *FS) Backend() posix.FS { return p.backend }

// stripedBackend finds the striped composite this instance runs over,
// seeing through instrumentation (or other Unwrap-able wrappers) the
// backend may be dressed in. Nil for a plain single store.
func (p *FS) stripedBackend() *posix.StripedFS {
	fs := p.backend
	for fs != nil {
		if s, ok := fs.(*posix.StripedFS); ok {
			return s
		}
		u, ok := fs.(interface{ Unwrap() posix.FS })
		if !ok {
			return nil
		}
		fs = u.Unwrap()
	}
	return nil
}

// NumBackends reports how many stores this instance stripes over (1 for
// a plain single-backend instance).
func (p *FS) NumBackends() int {
	if s := p.stripedBackend(); s != nil {
		return s.NumBackends()
	}
	return 1
}

// ContainerSpread counts the dropping files (data + index) per backend
// for the container at path — the observability hook behind `plfsctl
// info`/`doctor` and the proof, in tests, that striping actually fans
// out. For a single-backend instance the single bucket holds every
// dropping.
func (p *FS) ContainerSpread(path string) ([]int, error) {
	if !p.IsContainer(path) {
		return nil, posix.ENOENT
	}
	striped := p.stripedBackend()
	spread := make([]int, p.NumBackends())
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if !d.IsDir || !strings.HasPrefix(d.Name, "hostdir.") {
			continue
		}
		hostdir := path + "/" + d.Name
		files, err := p.backend.Readdir(hostdir)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, fe := range files {
			if strings.HasPrefix(fe.Name, "dropping.") {
				n++
			}
		}
		bi := 0
		if striped != nil {
			bi = striped.BackendFor(hostdir)
		}
		spread[bi] += n
	}
	return spread, nil
}

func (p *FS) hostdir(path string, pid uint32) string {
	return fmt.Sprintf("%s/hostdir.%d", path, int(pid)%p.cfg.Engine.NumHostdirs)
}

func dataDropping(hostdir string, pid uint32) string {
	return fmt.Sprintf("%s/dropping.data.%d", hostdir, pid)
}

func indexDropping(hostdir string, pid uint32) string {
	return fmt.Sprintf("%s/dropping.index.%d", hostdir, pid)
}

// IsContainer reports whether path names a PLFS container.
func (p *FS) IsContainer(path string) bool {
	st, err := p.backend.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	_, err = p.backend.Stat(path + "/" + accessFile)
	return err == nil
}

// CreateContainer builds an empty container at path. It is idempotent:
// concurrent creators race benignly on EEXIST, as PLFS containers do on a
// shared parallel file system.
func (p *FS) CreateContainer(path string, mode uint32) error {
	if err := p.backend.Mkdir(path, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create container %s: %w", path, err)
	}
	fd, err := p.backend.Open(path+"/"+accessFile, posix.O_CREAT|posix.O_WRONLY, mode)
	if err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create access file: %w", err)
	}
	if err == nil {
		p.backend.Close(fd)
	}
	if fd, err := p.backend.Open(path+"/"+versionFile, posix.O_CREAT|posix.O_EXCL|posix.O_WRONLY, 0o644); err == nil {
		p.backend.Write(fd, []byte(versionText))
		p.backend.Close(fd)
	}
	if err := p.backend.Mkdir(path+"/"+metaDir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create meta dir: %w", err)
	}
	if err := p.backend.Mkdir(path+"/"+openhostsDir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return fmt.Errorf("plfs: create openhosts dir: %w", err)
	}
	// A non-default layout is part of the container's identity: persist
	// its descriptor (versioned, checksummed) so doctor and later mounts
	// can verify the container is opened under the layout it was written
	// with. Default mod-N containers stay byte-identical to history.
	if s := p.stripedBackend(); s != nil && s.LayoutWidth() > 1 {
		if fd, err := p.backend.Open(path+"/"+layoutFile, posix.O_CREAT|posix.O_EXCL|posix.O_WRONLY, 0o644); err == nil {
			p.backend.Write(fd, posix.MarshalLayoutDescriptor(s.Layout().Descriptor()))
			p.backend.Close(fd)
		}
	}
	return nil
}

// ContainerLayout reads the layout descriptor persisted in the
// container at path. It returns "" with a nil error when no descriptor
// is recorded (a default mod-N container) and an error when a record
// exists but fails validation — a truncated or corrupt descriptor must
// surface loudly, not be mistaken for mod-N.
func (p *FS) ContainerLayout(path string) (string, error) {
	fd, err := p.backend.Open(path+"/"+layoutFile, posix.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, posix.ENOENT) {
			return "", nil
		}
		return "", fmt.Errorf("plfs: open layout descriptor: %w", err)
	}
	defer p.backend.Close(fd)
	st, err := p.backend.Fstat(fd)
	if err != nil {
		return "", fmt.Errorf("plfs: stat layout descriptor: %w", err)
	}
	if st.Size > 1<<16 {
		return "", fmt.Errorf("plfs: layout descriptor implausibly large (%d bytes)", st.Size)
	}
	// The descriptor is capped well under one pooled chunk, and
	// UnmarshalLayoutDescriptor copies what it keeps (string conversion)
	// — the scratch buffer can go straight back to the pool.
	b := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(b)
	buf := (*b)[:st.Size]
	if err := posix.ReadFull(p.backend, fd, buf, 0); err != nil {
		return "", fmt.Errorf("plfs: read layout descriptor: %w", err)
	}
	desc, err := posix.UnmarshalLayoutDescriptor(buf)
	if err != nil {
		return "", fmt.Errorf("plfs: container %s: %w", path, err)
	}
	return desc, nil
}

// markOpen drops an openhosts record for pid — PLFS's signal that a
// writer is active, so stat must not trust the meta size hints.
func (p *FS) markOpen(path string, pid uint32) {
	// Best effort, like PLFS: a missing record only makes stat cheaper.
	if err := p.backend.Mkdir(path+"/"+openhostsDir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return
	}
	name := fmt.Sprintf("%s/%s/host.%d", path, openhostsDir, pid)
	if fd, err := p.backend.Open(name, posix.O_CREAT|posix.O_WRONLY, 0o644); err == nil {
		p.backend.Close(fd)
	}
}

// clearOpen removes pid's openhosts record.
func (p *FS) clearOpen(path string, pid uint32) {
	p.backend.Unlink(fmt.Sprintf("%s/%s/host.%d", path, openhostsDir, pid))
}

// hasOpenWriters reports whether any writer holds the container open.
func (p *FS) hasOpenWriters(path string) bool {
	entries, err := p.backend.Readdir(path + "/" + openhostsDir)
	return err == nil && len(entries) > 0
}

// OpenHostRecord describes one openhosts entry — the marker an active
// writer drops at open and clears at close.
type OpenHostRecord struct {
	Pid uint32
	// Stale marks a record whose pid has no data dropping: the writer's
	// state is gone (a pre-fix Trunc(0) leak, or a crash between
	// container truncation and close), so nothing can still be writing
	// under it. Stale records pin Stat on the slow merged-index path and
	// make CompactIndex refuse the container.
	Stale bool
}

// OpenHosts lists the container's openhosts records and diagnoses stale
// ones — the check behind `plfsctl doctor`.
func (p *FS) OpenHosts(path string) ([]OpenHostRecord, error) {
	if !p.IsContainer(path) {
		return nil, posix.ENOENT
	}
	entries, err := p.backend.Readdir(path + "/" + openhostsDir)
	if err != nil {
		if errors.Is(err, posix.ENOENT) {
			return nil, nil
		}
		return nil, err
	}
	var out []OpenHostRecord
	for _, e := range entries {
		var pid uint32
		if e.IsDir {
			continue
		}
		if _, err := fmt.Sscanf(e.Name, "host.%d", &pid); err != nil {
			continue
		}
		rec := OpenHostRecord{Pid: pid}
		if _, err := p.backend.Stat(dataDropping(p.hostdir(path, pid), pid)); errors.Is(err, posix.ENOENT) {
			rec.Stale = true
		}
		out = append(out, rec)
	}
	return out, nil
}

// ScrubOpenHosts removes the container's stale openhosts records (see
// OpenHostRecord.Stale), returning how many were actually unlinked.
// Live records are left alone; a record that cannot be removed is not
// counted and the first failure is reported, so a repair tool never
// claims success over a still-degraded container.
func (p *FS) ScrubOpenHosts(path string) (int, error) {
	recs, err := p.OpenHosts(path)
	if err != nil {
		return 0, err
	}
	removed := 0
	var ferr error
	for _, r := range recs {
		if !r.Stale {
			continue
		}
		name := fmt.Sprintf("%s/%s/host.%d", path, openhostsDir, r.Pid)
		if err := p.backend.Unlink(name); err != nil {
			if ferr == nil {
				ferr = fmt.Errorf("plfs: scrub %s: %w", name, err)
			}
			continue
		}
		removed++
	}
	return removed, ferr
}

// bumpClock raises the logical clock to at least min, so entries written
// after an index consolidation (truncate, compact) cannot lose a
// timestamp race against the re-stamped consolidated records.
func (p *FS) bumpClock(min uint64) {
	for {
		cur := p.clock.Load()
		if cur >= min || p.clock.CompareAndSwap(cur, min) {
			return
		}
	}
}

// seedClock raises this instance's logical clock past every timestamp
// already recorded in path's index droppings — once per container per
// instance, before the container's first writer is created. A fresh FS
// starts its clock at zero, so without the seed, new writes (from any
// pid, including one with no dropping of its own) would lose the
// last-writer-wins merge against records from a previous run.
func (p *FS) seedClock(path string) error {
	p.smu.Lock()
	done := p.seeded[path]
	p.smu.Unlock()
	if done {
		return nil
	}
	entries, err := p.readAllEntries(path)
	if err != nil {
		return fmt.Errorf("plfs: seed clock for %s: %w", path, err)
	}
	for _, e := range entries {
		p.bumpClock(e.Timestamp)
	}
	p.smu.Lock()
	p.seeded[path] = true
	p.smu.Unlock()
	return nil
}

// writer is the per-pid append state of an open file. Each writer owns
// its own lock: writes by distinct pids touch distinct droppings and
// proceed fully in parallel (the point of PLFS's file partitioning),
// synchronizing only on the handle's shared lock and the atomic clock.
//
// Lock order: File.mu (shared or exclusive) before writer.mu. Paths
// holding File.mu exclusive (Trunc, Close, release) own every writer
// outright and skip writer.mu.
type writer struct {
	mu      sync.Mutex
	dataFD  int
	idxW    *idx.Writer
	physOff int64
	maxEnd  int64 // highest logical offset+len this writer produced
}

// File is an open PLFS file handle — the analogue of Plfs_fd*. A single
// File may serve several writer pids (as when LDPLFS funnels multiple
// POSIX fds onto one container) and any number of readers. Reads and
// writes take the handle lock shared — concurrent readers proceed in
// parallel, and writers for distinct pids do too, serializing only on
// their own per-writer lock. Handle lifecycle and cross-writer
// operations (Trunc, Close, release) take it exclusive.
type File struct {
	fs    *FS
	path  string
	flags int
	seq   uint64 // registration order; cross-handle lock-acquisition order

	// validated records whether this handle has revalidated the shared
	// index cache against the backend (close-to-open consistency: the
	// first read of a fresh handle checks the dropping signature).
	validated atomic.Bool

	// wgen counts this handle's writes: the private index (below) is
	// stale whenever its build generation trails wgen. A per-handle
	// generation bump replaces the pre-engine global stale-out (index =
	// nil under an exclusive lock) that every write used to pay.
	wgen atomic.Uint64

	mu       sync.RWMutex
	writers  map[uint32]*writer
	index    *idx.Index // private index, used only with DisableIndexCache
	indexGen uint64     // wgen value the private index was built at
	refs     int

	// dpaths caches pid → data-dropping path so warm reads skip the
	// two per-batch Sprintf calls. Guarded by dmu, not f.mu: path
	// resolution happens inside the read engine where f.mu may be held
	// shared by many readers.
	dmu    sync.RWMutex
	dpaths map[uint32]string

	// sigFn/loadFn are the shared index-cache callbacks, bound once at
	// open so a warm readIndex allocates no closures.
	sigFn  func() (readcache.Signature, error)
	loadFn func() (*idx.Index, readcache.Signature, readcache.BuildKind, error)
}

// Open opens (and with O_CREAT, creates) the container at path, returning
// a file handle. pid identifies the calling writer, as in plfs_open.
func (p *FS) Open(path string, flags int, pid uint32, mode uint32) (*File, error) {
	start := p.opStart()
	f, err := p.open(path, flags, pid, mode)
	p.observeOp(iostats.Open, 0, start, err)
	return f, err
}

func (p *FS) open(path string, flags int, pid uint32, mode uint32) (*File, error) {
	exists := p.IsContainer(path)
	if !exists {
		if st, err := p.backend.Stat(path); err == nil && st.IsDir() {
			return nil, posix.EISDIR
		}
		if flags&posix.O_CREAT == 0 {
			return nil, posix.ENOENT
		}
		if err := p.CreateContainer(path, mode); err != nil {
			return nil, err
		}
	} else if flags&posix.O_CREAT != 0 && flags&posix.O_EXCL != 0 {
		return nil, posix.EEXIST
	}

	f := &File{
		fs:      p,
		path:    path,
		flags:   flags,
		writers: make(map[uint32]*writer),
		dpaths:  make(map[uint32]string),
		refs:    1,
	}
	f.sigFn = func() (readcache.Signature, error) { return p.indexSignature(f.path) }
	f.loadFn = func() (*idx.Index, readcache.Signature, readcache.BuildKind, error) { return p.buildIndex(f.path) }
	if flags&posix.O_TRUNC != 0 && flags&posix.O_ACCMODE != posix.O_RDONLY {
		// Shared truncate: handles already open on this container must
		// have their writers retired, not left appending to unlinked
		// droppings. The new handle has no writers yet.
		if err := p.truncateShared(path, 0); err != nil {
			f.release()
			return nil, err
		}
	}
	p.retainContainer(path, f)
	return f, nil
}

// Ref increments the handle's reference count (plfs_open on an already
// open Plfs_fd does the same).
func (f *File) Ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// Path returns the container path this handle refers to.
func (f *File) Path() string { return f.path }

// dataPath resolves pid's data-dropping path through the handle's
// cache: the hostdir/dropping formatting runs once per pid per handle,
// warm lookups are a shared-lock map hit.
func (f *File) dataPath(pid uint32) string {
	f.dmu.RLock()
	path, ok := f.dpaths[pid]
	f.dmu.RUnlock()
	if ok {
		return path
	}
	path = dataDropping(f.fs.hostdir(f.path, pid), pid)
	f.dmu.Lock()
	f.dpaths[pid] = path
	f.dmu.Unlock()
	return path
}

// getWriterLocked returns (creating if needed) pid's writer. Caller
// holds f.mu exclusive.
func (f *File) getWriterLocked(pid uint32) (*writer, error) {
	if w, ok := f.writers[pid]; ok {
		return w, nil
	}
	if err := f.fs.seedClock(f.path); err != nil {
		return nil, err
	}
	hostdir := f.fs.hostdir(f.path, pid)
	if err := f.fs.backend.Mkdir(hostdir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return nil, fmt.Errorf("plfs: create hostdir: %w", err)
	}
	// The data dropping is opened without O_APPEND: the write engine
	// tracks the append cursor (physOff) itself and lands payload with
	// positional writes, so WriteV can reserve a physical range and fan
	// its segment pwrites out concurrently.
	dataPath := dataDropping(hostdir, pid)
	fd, err := f.fs.backend.Open(dataPath, posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plfs: open data dropping: %w", err)
	}
	st, err := f.fs.backend.Fstat(fd)
	if err != nil {
		f.fs.backend.Close(fd)
		return nil, err
	}
	iw, err := openIndexWriter(f.fs, indexDropping(hostdir, pid))
	if err != nil {
		f.fs.backend.Close(fd)
		return nil, err
	}
	w := &writer{dataFD: fd, idxW: iw, physOff: st.Size}
	f.writers[pid] = w
	f.fs.markOpen(f.path, pid)
	return w, nil
}

// openIndexWriter opens an index dropping for appending, creating it if
// necessary; re-opening an existing dropping resumes after its records.
func openIndexWriter(p *FS, path string) (*idx.Writer, error) {
	if _, err := p.backend.Stat(path); err == nil {
		return idx.OpenWriter(p.backend, path)
	}
	return idx.NewWriter(p.backend, path)
}

// Write appends count bytes at logical offset off on behalf of pid —
// plfs_write. The payload lands at the end of pid's data dropping and one
// index record is buffered (group-flushed per Options.IndexBatch).
// Writes for distinct pids proceed fully in parallel.
//
// Partial-write semantics: n is the number of payload bytes that reached
// the data dropping. Those n bytes are always indexed — even when err is
// non-nil — so the logical file reflects exactly the durable prefix and
// the writer's physical cursor never desynchronizes from the dropping.
func (f *File) Write(buf []byte, off int64, pid uint32) (int, error) {
	start := f.fs.opStart()
	n, err := f.write(buf, off, pid)
	f.fs.observeOp(iostats.Write, int64(n), start, err)
	return n, err
}

func (f *File) write(buf []byte, off int64, pid uint32) (int, error) {
	if f.flags&posix.O_ACCMODE == posix.O_RDONLY {
		return 0, posix.EBADF
	}
	if off < 0 {
		return 0, posix.EINVAL
	}
	if len(buf) == 0 {
		return 0, nil
	}
	w, unlock, err := f.lockWriter(pid)
	if err != nil {
		return 0, err
	}
	defer unlock()
	n, werr := w.writeData(f.fs.backend, buf)
	if n > 0 {
		// Record the durable extent even on error: the dropping grew by
		// n bytes, so skipping the entry would leave physOff pointing n
		// bytes before the next write's real payload.
		f.recordExtentLocked(w, off, int64(n), pid)
	}
	if werr != nil {
		return n, fmt.Errorf("plfs: write data dropping: %w", werr)
	}
	return n, nil
}

// loadIndexLocked builds (or returns) this handle's private index — the
// pre-cache path, used only with Options.DisableIndexCache. Caller holds
// f.mu exclusive, so no writer is mid-flight and their buffers can be
// flushed without taking per-writer locks.
func (f *File) loadIndexLocked() (*idx.Index, error) {
	gen := f.wgen.Load()
	if f.index != nil && f.indexGen == gen {
		return f.index, nil
	}
	// Flush our buffered index records so they are part of the merge.
	for _, w := range f.writers {
		if err := w.idxW.Sync(); err != nil {
			return nil, err
		}
	}
	entries, err := f.fs.readAllEntries(f.path)
	if err != nil {
		return nil, err
	}
	// gen was sampled before the flush: a write racing with the merge
	// bumps wgen past it and the next read rebuilds.
	f.index, f.indexGen = idx.Build(entries), gen
	return f.index, nil
}

// readIndex returns the merged index for this handle's container via the
// shared cache, flushing this handle's buffered index records first so
// its own writes are visible to its reads. The first call on a fresh
// handle revalidates the cached index against the backend (close-to-open
// consistency); after that, same-instance generation tracking suffices.
func (f *File) readIndex() (*idx.Index, error) {
	f.mu.RLock()
	dirty := false
	for _, w := range f.writers {
		w.mu.Lock()
		buffered := w.idxW.Buffered()
		w.mu.Unlock()
		if buffered > 0 {
			dirty = true
			break
		}
	}
	if dirty {
		// Writers stay concurrent during the flush — each is quiesced
		// under its own lock, not the handle's.
		var ferr error
		for _, w := range f.writers {
			w.mu.Lock()
			if err := w.idxW.Sync(); err != nil && ferr == nil {
				ferr = err
			}
			w.mu.Unlock()
		}
		f.mu.RUnlock()
		f.fs.invalidateIndex(f.path)
		if ferr != nil {
			return nil, ferr
		}
	} else {
		f.mu.RUnlock()
	}
	index, _, err := f.fs.cache.Get(f.path, !f.validated.Load(), f.sigFn, f.loadFn)
	if err != nil {
		return nil, err
	}
	f.validated.Store(true)
	return index, nil
}

// Read fills buf from logical offset off — plfs_read. It scatter-gathers
// across data droppings according to the merged index; holes read as
// zeros. Reads do not exclude each other: concurrent Reads on one handle
// (or many handles over one container) proceed in parallel, and the
// per-extent preads of a single Read are themselves issued concurrently
// across droppings (Options.ReadWorkers).
//
// Short-read semantics: with no error, n is the number of requested
// bytes that lie below EOF (n < len(buf) only at end of file). On error,
// n is the length of the contiguous error-free prefix of the request —
// bytes buf[:n] are valid, bytes beyond n are unspecified — and the
// error describes the first failing extent.
func (f *File) Read(buf []byte, off int64) (int, error) {
	start := f.fs.opStart()
	n, err := f.read(buf, off)
	f.fs.observeOp(iostats.Read, int64(n), start, err)
	return n, err
}

func (f *File) read(buf []byte, off int64) (int, error) {
	if f.flags&posix.O_ACCMODE == posix.O_WRONLY {
		return 0, posix.EBADF
	}
	if off < 0 {
		return 0, posix.EINVAL
	}
	if len(buf) == 0 {
		return 0, nil
	}
	if f.fs.cfg.Index.DisableCache {
		// Legacy serialized path: one exclusive lock across merge and
		// gather, exactly the seed behavior. Benchmark baseline.
		f.mu.Lock()
		defer f.mu.Unlock()
		index, err := f.loadIndexLocked()
		if err != nil {
			return 0, err
		}
		return f.fs.scatterGather(f, buf, off, index)
	}
	index, err := f.readIndex()
	if err != nil {
		return 0, err
	}
	return f.fs.scatterGather(f, buf, off, index)
}

// Size returns the logical file size.
func (f *File) Size() (int64, error) {
	if f.fs.cfg.Index.DisableCache {
		f.mu.Lock()
		defer f.mu.Unlock()
		index, err := f.loadIndexLocked()
		if err != nil {
			return 0, err
		}
		return index.Size(), nil
	}
	index, err := f.readIndex()
	if err != nil {
		return 0, err
	}
	return index.Size(), nil
}

// Sync flushes pid's buffered index records and data — plfs_sync. Syncs
// for distinct pids proceed in parallel, like the writes they flush.
func (f *File) Sync(pid uint32) error {
	start := f.fs.opStart()
	err := f.sync(pid)
	f.fs.observeOp(iostats.Sync, 0, start, err)
	return err
}

func (f *File) sync(pid uint32) error {
	f.mu.RLock()
	w, ok := f.writers[pid]
	if !ok {
		f.mu.RUnlock()
		return nil
	}
	w.mu.Lock()
	serr := w.idxW.Sync()
	var ferr error
	if serr == nil {
		ferr = f.fs.backend.Fsync(w.dataFD)
	}
	w.mu.Unlock()
	f.mu.RUnlock()
	// Stale out the shared index even on error: the record flush may
	// have reached the backend before the fsync failed, and the writer's
	// buffer is empty either way, so readIndex's dirty check would never
	// re-trigger the invalidation.
	f.fs.invalidateIndex(f.path)
	if serr != nil {
		return serr
	}
	return ferr
}

// Trunc truncates the open file — plfs_trunc on an open handle. The
// truncate is container-level: every handle this instance holds on the
// container is quiesced and has its writers retired or rebound, not
// just the handle it was issued through.
func (f *File) Trunc(size int64) error {
	if f.flags&posix.O_ACCMODE == posix.O_RDONLY {
		return posix.EBADF
	}
	return f.fs.truncateShared(f.path, size)
}

// truncateShared truncates a container while quiescing every open
// handle this instance holds on it: all handle locks are acquired (in
// registration order, so concurrent truncates cannot deadlock), every
// writer's buffered records are flushed so they participate in the
// consolidation, and afterwards each handle's writers are retired
// (size 0) or rebound to fresh index droppings (size > 0) — a truncate
// through one handle, a path-based Truncate, or an O_TRUNC open must
// not leave another handle's writers appending to unlinked droppings.
// Handles held by other FS instances over the same backend are out of
// reach, exactly as other processes are for PLFS proper.
func (p *FS) truncateShared(path string, size int64) error {
	files := p.openHandles(path)
	for _, f := range files {
		f.mu.Lock()
	}
	defer func() {
		for _, f := range files {
			f.mu.Unlock()
		}
	}()
	for _, f := range files {
		for _, w := range f.writers {
			if err := w.idxW.Sync(); err != nil {
				return err
			}
		}
	}
	if err := p.truncateContainer(path, size); err != nil {
		return err
	}
	var rerr error
	for _, f := range files {
		if err := f.rebindWritersLocked(size); err != nil && rerr == nil {
			rerr = err
		}
		f.index = nil
		f.wgen.Add(1)
	}
	return rerr
}

// rebindWritersLocked repairs this handle's writers after the
// container's droppings were replaced by a truncate. Caller holds f.mu
// exclusive.
func (f *File) rebindWritersLocked(size int64) error {
	if size == 0 {
		// The droppings are gone; retire every writer outright. Each
		// pid's openhosts record goes with it — leaving it behind would
		// make hasOpenWriters report true for the container's remaining
		// lifetime, pinning Stat on the slow merged-index path and
		// making CompactIndex refuse the container forever.
		for pid, w := range f.writers {
			f.fs.backend.Close(w.dataFD)
			w.idxW.Close()
			f.fs.clearOpen(f.path, pid)
			delete(f.writers, pid)
		}
		return nil
	}
	// truncateContainer replaced every index dropping with one
	// consolidated dropping — including the droppings live writers
	// still hold open. Rebind each surviving writer to a fresh index
	// dropping, or its post-truncate records would keep landing in the
	// unlinked file, invisible to every reader. Data droppings are
	// untouched, so physical cursors remain valid. Every writer is
	// visited even after a rebind failure: a writer that cannot be
	// rebound is retired (its future writes would otherwise vanish),
	// and the first error is reported.
	var rerr error
	for pid, w := range f.writers {
		w.idxW.Close()
		iw, err := openIndexWriter(f.fs, indexDropping(f.fs.hostdir(f.path, pid), pid))
		if err != nil {
			f.fs.backend.Close(w.dataFD)
			f.fs.clearOpen(f.path, pid)
			delete(f.writers, pid)
			if rerr == nil {
				rerr = fmt.Errorf("plfs: rebind index dropping after trunc: %w", err)
			}
			continue
		}
		w.idxW = iw
		if w.maxEnd > size {
			// Clamp the close-time size hint: this writer's extents
			// beyond size were just clipped away.
			w.maxEnd = size
		}
	}
	return rerr
}

// Close drops pid's writer state and decrements the handle refcount —
// plfs_close. When the last reference closes, every remaining writer is
// also torn down, size metadata is dropped into meta/ so later stats can
// avoid a full index merge, and the openhosts records are cleared. A
// close that retires the container's last writer also persists the
// flattened global index (best effort), so the next cold open loads
// O(extents) instead of re-merging every dropping.
func (f *File) Close(pid uint32) error {
	f.mu.Lock()
	_, hadWriter := f.writers[pid]
	if err := f.teardownWriterLocked(pid); err != nil {
		f.mu.Unlock()
		return err
	}
	f.refs--
	last := f.refs <= 0
	if last {
		if len(f.writers) > 0 {
			hadWriter = true
		}
		f.releaseLocked()
	}
	f.mu.Unlock()
	if last {
		f.fs.releaseContainer(f.path, f)
	}
	if hadWriter {
		f.fs.maybeAutoFlatten(f.path)
	}
	return nil
}

// teardownWriterLocked closes one pid's writer, drops its size hint and
// clears its openhosts record. Caller holds f.mu.
func (f *File) teardownWriterLocked(pid uint32) error {
	w, ok := f.writers[pid]
	if !ok {
		return nil
	}
	// Invalidate even if the close errors below: its internal flush may
	// have put records on the backend before failing.
	defer f.fs.invalidateIndex(f.path)
	if err := w.idxW.Close(); err != nil {
		return err
	}
	if err := f.fs.backend.Close(w.dataFD); err != nil {
		return err
	}
	// Drop a metadata hint: max logical extent this writer saw.
	metaPath := fmt.Sprintf("%s/%s/size.%d", f.path, metaDir, pid)
	if fd, err := f.fs.backend.Open(metaPath, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644); err == nil {
		f.fs.backend.Write(fd, []byte(fmt.Sprintf("%d\n", w.maxEnd)))
		f.fs.backend.Close(fd)
	}
	f.fs.clearOpen(f.path, pid)
	delete(f.writers, pid)
	f.index = nil
	return nil
}

func (f *File) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.releaseLocked()
}

func (f *File) releaseLocked() {
	for pid := range f.writers {
		// Full teardown (hints + openhosts), not just fd closes: the
		// handle may serve several writer pids and the last reference
		// retires all of them.
		f.teardownWriterLocked(pid)
	}
	f.index = nil
}

// Stat describes a container without opening it — plfs_getattr. It prefers
// the meta/ size hints and falls back to a full index merge when none
// exist (e.g. the container was never cleanly closed).
func (p *FS) Stat(path string) (posix.Stat, error) {
	if !p.IsContainer(path) {
		return posix.Stat{}, posix.ENOENT
	}
	st, err := p.backend.Stat(path)
	if err != nil {
		return posix.Stat{}, err
	}
	out := posix.Stat{Mode: 0o644, Nlink: 1, Ino: st.Ino, Mtime: st.Mtime}

	var size int64
	if p.hasOpenWriters(path) {
		// Active writers: the hints are stale by construction; merge the
		// on-disk index droppings for a live answer.
		index, err := p.mergedIndex(path)
		if err != nil {
			return posix.Stat{}, err
		}
		size = index.Size()
	} else {
		var ok bool
		var err error
		size, ok, err = p.metaSize(path)
		if err != nil {
			return posix.Stat{}, err
		}
		if !ok {
			index, err := p.mergedIndex(path)
			if err != nil {
				return posix.Stat{}, err
			}
			size = index.Size()
		}
	}
	out.Size = size
	return out, nil
}

// mergedIndex returns the container's merged index, through the shared
// cache when enabled (revalidated against the backend, since no handle
// tracks freshness for path-level operations).
func (p *FS) mergedIndex(path string) (*idx.Index, error) {
	if p.cache == nil {
		index, _, _, err := p.buildIndex(path)
		return index, err
	}
	index, _, err := p.cache.Get(path, true,
		func() (readcache.Signature, error) { return p.indexSignature(path) },
		func() (*idx.Index, readcache.Signature, readcache.BuildKind, error) { return p.buildIndex(path) })
	return index, err
}

// metaSize returns the size recorded by cleanly closed writers. ok is
// false when no hints exist.
func (p *FS) metaSize(path string) (int64, bool, error) {
	entries, err := p.backend.Readdir(path + "/" + metaDir)
	if err != nil {
		if errors.Is(err, posix.ENOENT) {
			return 0, false, nil
		}
		return 0, false, err
	}
	var size int64
	found := false
	for _, e := range entries {
		if e.IsDir {
			continue
		}
		fd, err := p.backend.Open(path+"/"+metaDir+"/"+e.Name, posix.O_RDONLY, 0)
		if err != nil {
			continue
		}
		buf := make([]byte, 32)
		n, _ := p.backend.Read(fd, buf)
		p.backend.Close(fd)
		var v int64
		if _, err := fmt.Sscanf(string(buf[:n]), "%d", &v); err == nil {
			found = true
			if v > size {
				size = v
			}
		}
	}
	// Meta hints under-report if a writer died before close; a writer that
	// is still active has no hint at all. Cross-check against index
	// droppings only when nothing was found.
	return size, found, nil
}

// Unlink removes a container and all its droppings — plfs_unlink.
func (p *FS) Unlink(path string) error {
	if !p.IsContainer(path) {
		return posix.ENOENT
	}
	p.dropIndex(path)
	p.fds.DropPrefix(path + "/")
	err := p.removeTree(path)
	// As in truncate-to-zero: drop state a racing reader cached while
	// the tree was coming down.
	p.fds.DropPrefix(path + "/")
	p.dropIndex(path)
	return err
}

func (p *FS) removeTree(path string) error {
	entries, err := p.backend.Readdir(path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := path + "/" + e.Name
		if e.IsDir {
			if err := p.removeTree(child); err != nil {
				return err
			}
		} else if err := p.backend.Unlink(child); err != nil {
			return err
		}
	}
	return p.backend.Rmdir(path)
}

// Rename moves a container — plfs_rename.
func (p *FS) Rename(oldpath, newpath string) error {
	if !p.IsContainer(oldpath) {
		return posix.ENOENT
	}
	if p.IsContainer(newpath) {
		if err := p.Unlink(newpath); err != nil {
			return err
		}
	}
	p.dropIndex(oldpath)
	p.dropIndex(newpath)
	p.fds.DropPrefix(oldpath + "/")
	return p.backend.Rename(oldpath, newpath)
}

// Truncate truncates a container by path — plfs_trunc. Handles this
// instance holds open on the container are quiesced and repaired, as
// through File.Trunc.
func (p *FS) Truncate(path string, size int64) error {
	if !p.IsContainer(path) {
		return posix.ENOENT
	}
	return p.truncateShared(path, size)
}

// truncateContainer implements truncation the way PLFS does: size zero
// removes every dropping; a partial truncate consolidates the clipped
// global index into a single replacement index dropping.
func (p *FS) truncateContainer(path string, size int64) error {
	if size < 0 {
		return posix.EINVAL
	}
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return err
	}
	if size == 0 {
		// The droppings are about to disappear: cached read fds point at
		// doomed files and the cached index at doomed entries. Flattened
		// records describe the doomed extents — remove them too (their
		// raw signature would fail anyway; this keeps the container
		// clean).
		p.fds.DropPrefix(path + "/")
		p.invalidateIndex(path)
		for _, d := range dirs {
			if d.IsDir && len(d.Name) >= 8 && d.Name[:8] == "hostdir." {
				if err := p.removeTree(path + "/" + d.Name); err != nil {
					return err
				}
			} else if !d.IsDir {
				if _, ok := parseFlattenedGen(d.Name); ok {
					p.backend.Unlink(path + "/" + d.Name)
				}
			}
		}
		// Drop again: a reader racing with the deletion may have cached a
		// descriptor for a dropping — or rebuilt and cached a pre-truncate
		// index — between the first drop and the unlinks.
		p.fds.DropPrefix(path + "/")
		p.invalidateIndex(path)
		return p.clearMeta(path, 0)
	}

	entries, err := p.readAllEntries(path)
	if err != nil {
		return err
	}
	global := idx.Build(entries)
	global.Truncate(size)
	if global.Size() < size {
		global.Extend(size)
	}
	// Replace every index dropping with one consolidated dropping holding
	// the clipped extents (re-timestamped in resolved order).
	var consolidated []idx.Entry
	for i, x := range global.Extents() {
		if x.Hole {
			continue
		}
		consolidated = append(consolidated, idx.Entry{
			LogicalOffset:  x.LogicalOffset,
			Length:         x.Length,
			PhysicalOffset: x.PhysicalOffset,
			Timestamp:      uint64(i + 1),
			Pid:            x.Pid,
		})
	}
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return err
	}
	for _, d := range droppings {
		if err := p.backend.Unlink(d); err != nil {
			return err
		}
	}
	hostdir := fmt.Sprintf("%s/hostdir.%d", path, 0)
	if err := p.backend.Mkdir(hostdir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return err
	}
	if err := idx.WriteDropping(p.backend, hostdir+"/dropping.index.trunc", consolidated); err != nil {
		return err
	}
	// Consolidation can mint more timestamps than writes ever happened
	// (overlaps split entries into several extents); keep the clock ahead
	// of them so post-truncate writes still win last-writer-wins.
	p.bumpClock(uint64(len(consolidated)))
	// Any flattened record predates the consolidation; its raw signature
	// no longer matches, so retire it rather than leave a stale file.
	for _, d := range dirs {
		if !d.IsDir {
			if _, ok := parseFlattenedGen(d.Name); ok {
				p.backend.Unlink(path + "/" + d.Name)
			}
		}
	}
	// A sparse tail (truncate upward) needs a zero-length sentinel so Size
	// sees the extension. Represent it with a zero-filled entry of length
	// zero is impossible; instead extend via meta hints.
	p.invalidateIndex(path)
	return p.clearMeta(path, size)
}

// clearMeta resets the meta hints to a single authoritative size.
func (p *FS) clearMeta(path string, size int64) error {
	metaPath := path + "/" + metaDir
	entries, err := p.backend.Readdir(metaPath)
	if err == nil {
		for _, e := range entries {
			p.backend.Unlink(metaPath + "/" + e.Name)
		}
	}
	fd, err := p.backend.Open(metaPath+"/size.trunc", posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		return nil // best effort: stat falls back to index merge
	}
	p.backend.Write(fd, []byte(fmt.Sprintf("%d\n", size)))
	p.backend.Close(fd)
	return nil
}

// CompactIndex merges every index dropping in the container into one
// consolidated dropping — plfs_flatten_index. Read opens afterwards load
// a single file instead of one per historical writer, which is PLFS's
// answer to slow first-reads on many-writer containers. The container
// must have no active writers.
func (p *FS) CompactIndex(path string) error {
	if !p.IsContainer(path) {
		return posix.ENOENT
	}
	if p.hasOpenWriters(path) {
		return fmt.Errorf("plfs: compact %s: container has active writers", path)
	}
	entries, err := p.readAllEntries(path)
	if err != nil {
		return err
	}
	global := idx.Build(entries)
	var flat []idx.Entry
	for i, x := range global.Extents() {
		if x.Hole {
			continue
		}
		flat = append(flat, idx.Entry{
			LogicalOffset:  x.LogicalOffset,
			Length:         x.Length,
			PhysicalOffset: x.PhysicalOffset,
			Timestamp:      uint64(i + 1),
			Pid:            x.Pid,
		})
	}
	// Write the consolidated dropping first, then remove the shards, so a
	// crash between the two steps leaves a readable (if redundant) index.
	hostdir := fmt.Sprintf("%s/hostdir.%d", path, 0)
	if err := p.backend.Mkdir(hostdir, 0o755); err != nil && !errors.Is(err, posix.EEXIST) {
		return err
	}
	compacted := hostdir + "/dropping.index.flattened"
	if err := idx.WriteDropping(p.backend, compacted, flat); err != nil {
		return err
	}
	p.bumpClock(uint64(len(flat)))
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return err
	}
	for _, d := range droppings {
		if d == compacted {
			continue
		}
		if err := p.backend.Unlink(d); err != nil {
			return err
		}
	}
	p.invalidateIndex(path)
	// Compaction replaced the raw droppings, so any existing flattened
	// record just went stale; refresh it from the consolidated state
	// (best effort — compaction itself succeeded either way). plfsctl
	// compact reports the outcome via IndexHealth.
	p.writeFlattened(path)
	return nil
}

// IndexDroppings counts the index dropping files in a container.
func (p *FS) IndexDroppings(path string) (int, error) {
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return 0, err
	}
	return len(droppings), nil
}

// Flatten materialises the container's logical contents as a plain file at
// dst on the backend — what "cp" through LDPLFS achieves, packaged as a
// utility (PLFS ships the same as plfs_flatten_index/"plfs_recover").
func (p *FS) Flatten(path, dst string) error {
	f, err := p.Open(path, posix.O_RDONLY, 0, 0)
	if err != nil {
		return err
	}
	defer f.Close(0)
	size, err := f.Size()
	if err != nil {
		return err
	}
	out, err := p.backend.Open(dst, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer p.backend.Close(out)
	// One pooled chunk instead of a private 4 MiB buffer per call: the
	// copy loop just runs more iterations, and repeated Flattens (auto-
	// flatten after compaction, plfsctl) stop churning the heap.
	b := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(b)
	buf := *b
	const chunk = copyBufChunk
	for off := int64(0); off < size; {
		n := chunk
		if rem := size - off; rem < int64(n) {
			n = int(rem)
		}
		got, err := f.Read(buf[:n], off)
		if err != nil {
			return err
		}
		if got == 0 {
			break
		}
		if err := posix.WriteFull(p.backend, out, buf[:got], off); err != nil {
			return err
		}
		off += int64(got)
	}
	return p.backend.Ftruncate(out, size)
}
