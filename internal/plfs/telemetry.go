// Telemetry and online tuning for the PLFS engines.
//
// Telemetry: with Options.Stats set, the instance reports every
// open/read/write/sync through one iostats layer ("plfs") and
// registers the shared index cache's counters on a second
// ("readcache"). With it unset, every recording call is a nil check —
// the plane is pay-for-what-you-touch.
//
// Tuning: with Options.AutoTune set, an IOPathTune-style feedback
// controller (internal/plfs/tune) hill-climbs the engine knobs —
// ReadWorkers, WriteWorkers, IndexBatch, BatchDepth — from observed throughput
// alone, within the hard bounds of the ladders below. The knobs it
// steers are runtime overrides (atomics consulted by the engines ahead
// of Options), so the controller adapts a live instance without a
// reopen; the same overrides double as the operator's runtime pinning
// surface (SetReadWorkers and friends).
package plfs

import (
	"time"

	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs/tune"
)

// Autotune ladders: the candidate values the controller may apply.
// The first and last rungs are the hard bounds it never leaves. To pin
// a knob statically, leave AutoTune off and set the Options field (or
// call the Set* override); AutoTune manages all four knobs.
var (
	readWorkersLadder  = []int{1, 2, 4, 8, 16}
	writeWorkersLadder = []int{1, 2, 4, 8, 16}
	indexBatchLadder   = []int{1, 8, 64, 512, 4096}
	batchDepthLadder   = []int{1, 4, 16, 64, 256}
)

// initTelemetry wires the stats layers and (optionally) the tuner.
// Called once from New, after opts are normalised.
func (p *FS) initTelemetry() {
	if p.cfg.Telemetry.Stats != nil {
		p.stats = p.cfg.Telemetry.Stats.Layer("plfs")
	}
	if !p.cfg.Tune.Enable {
		return
	}
	// The flush-only-on-sync mode (Options.IndexBatch < 0) reports a
	// threshold of 0; its nearest tunable analogue is the largest
	// batch, not the ladder bottom — starting at batch=1 would turn
	// the least index I/O into the most.
	batchStart := p.indexBatchRecords()
	if batchStart == 0 {
		batchStart = indexBatchLadder[len(indexBatchLadder)-1]
	}
	p.tuner = tune.New(
		tune.Config{
			WindowBytes: p.cfg.Tune.WindowBytes,
			Clock:       p.cfg.Tune.Clock,
		},
		p.tuneBytes.Load,
		tune.Knob{Name: "read-workers", Ladder: readWorkersLadder,
			Start: p.readWorkers(), Apply: p.SetReadWorkers},
		tune.Knob{Name: "write-workers", Ladder: writeWorkersLadder,
			Start: p.writeWorkers(), Apply: p.SetWriteWorkers},
		tune.Knob{Name: "index-batch", Ladder: indexBatchLadder,
			Start: batchStart, Apply: p.SetIndexBatch},
		tune.Knob{Name: "batch-depth", Ladder: batchDepthLadder,
			Start: p.batchDepth(), Apply: p.SetBatchDepth},
	)
}

// cacheStatsLayer returns the layer the index cache should register
// its counters on (nil when telemetry is off).
func (p *FS) cacheStatsLayer() *iostats.LayerStats {
	if p.cfg.Telemetry.Stats == nil {
		return nil
	}
	return p.cfg.Telemetry.Stats.Layer("readcache")
}

// opStart samples the clock for a latency measurement iff telemetry
// is on.
func (p *FS) opStart() time.Time { return p.stats.Start() }

// observeOp records one completed engine operation and, when the
// autotune controller is running, feeds its throughput window.
func (p *FS) observeOp(op iostats.Op, n int64, start time.Time, err error) {
	p.stats.End(op, n, start, err)
	if p.tuner != nil && n > 0 && (op == iostats.Read || op == iostats.Write) {
		p.tuneBytes.Add(n)
		p.tuner.Tick()
	}
}

// SetReadWorkers overrides Options.ReadWorkers on the live instance:
// subsequent reads fan their extent preads across n workers. n <= 0
// removes the override, restoring the configured value. The autotune
// controller drives this; operators can call it directly to pin the
// knob at runtime.
func (p *FS) SetReadWorkers(n int) { p.knobReadWorkers.Store(int32(n)) }

// SetWriteWorkers is SetReadWorkers for the vectored-write fan-out.
func (p *FS) SetWriteWorkers(n int) { p.knobWriteWorkers.Store(int32(n)) }

// SetBatchDepth overrides EngineOptions.BatchDepth on the live
// instance: subsequent reads and vectored writes coalesce up to n
// contiguous extents per backend submission (1 disables coalescing).
// n <= 0 removes the override, restoring the configured value.
func (p *FS) SetBatchDepth(n int) { p.knobBatchDepth.Store(int32(n)) }

// SetIndexBatch overrides Options.IndexBatch on the live instance:
// subsequent writes group-flush their index records every n records.
// n <= 0 removes the override (it cannot express the "flush only on
// sync" mode; configure that statically via Options.IndexBatch < 0).
func (p *FS) SetIndexBatch(n int) { p.knobIndexBatch.Store(int32(n)) }

// Tuner exposes the running autotune controller (nil when
// Options.AutoTune is off) — its State reports the knobs' current
// values and bounds, its Decisions the accepted and reverted trials.
func (p *FS) Tuner() *tune.Controller { return p.tuner }
