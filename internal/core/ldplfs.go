// Package core implements LDPLFS — the paper's contribution: a dynamically
// loadable shim that interposes the POSIX file API and retargets
// operations on paths under a PLFS mount point to the PLFS library,
// without modifying the application, the MPI stack, or the system
// environment.
//
// The mechanics mirror the paper's Section III-A exactly:
//
//   - Preload installs wrappers into the process's symbol table
//     (posix.Dispatch), capturing the previous bindings the way a shim
//     captures dlsym(RTLD_NEXT, "open").
//   - When an application opens a file under a configured mount point, the
//     shim calls plfs_open and ALSO opens a shadow POSIX file (the paper
//     uses /dev/random) so the application receives a genuine file
//     descriptor. The descriptor is stored in a lookup table mapping
//     fd -> Plfs_fd.
//   - Because the PLFS API wants explicit offsets while POSIX fds carry an
//     implicit file pointer, the current offset is maintained by lseek()
//     calls on the shadow descriptor: established with
//     lseek(fd, 0, SEEK_CUR) before each PLFS call and advanced with
//     lseek(fd, off+n, SEEK_SET) after it.
//   - Operations on descriptors or paths with no lookup entry fall through
//     to the previous symbols untouched.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Mount maps a mount point visible to the application onto a backend
// directory where PLFS containers physically live (in real PLFS this is
// the plfsrc mount_point/backends pair).
type Mount struct {
	Point   string // application-visible prefix, e.g. "/mnt/plfs"
	Backend string // backing directory, e.g. "/lustre/plfs-store"
}

// Config configures a preload.
type Config struct {
	Mounts []Mount
	// Pid identifies this "process" to PLFS (selects droppings); the paper
	// passes getpid(). MPI ranks use their rank id.
	Pid uint32
	// Plfs optionally supplies a shared PLFS library instance (as when
	// several ranks in one simulated node share state). Nil means a fresh
	// instance over the dispatch's previous symbols.
	Plfs *plfs.FS
	// PlfsOptions configures the instance created when Plfs is nil.
	PlfsOptions plfs.Options
	// ShadowPath is the file opened to obtain shadow descriptors; the
	// paper uses /dev/random. Defaults to "/.ldplfs.shadow" on the
	// underlying FS, created on demand.
	ShadowPath string
}

// Stats counts shim activity; exercised by tests and the overhead benches.
type Stats struct {
	Interposed  atomic.Int64 // calls retargeted to PLFS
	PassedThru  atomic.Int64 // calls forwarded to the real symbols
	ShadowSeeks atomic.Int64 // lseek bookkeeping calls on shadow fds
}

// LDPLFS is a loaded instance of the shim. One instance corresponds to one
// process having LD_PRELOAD=libldplfs.so in its environment.
type LDPLFS struct {
	real  posix.Dispatch // previous symbol bindings (RTLD_NEXT)
	table *posix.Dispatch
	plfs  *plfs.FS
	cfg   Config

	// mu guards files. Lookups (the hot path of every read/write) take
	// it shared, so concurrent preads and pwrites through the shim reach
	// the PLFS read and write engines in parallel instead of serializing
	// here — the table mutates only at open/close.
	mu    sync.RWMutex
	files map[int]*openFile // the paper's fd -> Plfs_fd lookup table

	Stats Stats
}

type openFile struct {
	file  *plfs.File
	flags int
	pid   uint32
}

// Preload installs LDPLFS into the process symbol table d. It captures the
// current bindings first, so previously loaded shims (e.g. tracing tools)
// keep working underneath — multiple libraries in LD_PRELOAD compose the
// same way.
func Preload(d *posix.Dispatch, cfg Config) (*LDPLFS, error) {
	if len(cfg.Mounts) == 0 {
		return nil, errors.New("ldplfs: no mount points configured (set PLFS_MNT)")
	}
	for i := range cfg.Mounts {
		cfg.Mounts[i].Point = cleanPrefix(cfg.Mounts[i].Point)
		cfg.Mounts[i].Backend = cleanPrefix(cfg.Mounts[i].Backend)
		if cfg.Mounts[i].Point == "" || cfg.Mounts[i].Backend == "" {
			return nil, fmt.Errorf("ldplfs: invalid mount %+v", cfg.Mounts[i])
		}
	}
	if cfg.ShadowPath == "" {
		cfg.ShadowPath = "/.ldplfs.shadow"
	}
	l := &LDPLFS{
		real:  d.Snapshot(),
		table: d,
		cfg:   cfg,
		files: make(map[int]*openFile),
	}
	if cfg.Plfs != nil {
		l.plfs = cfg.Plfs
	} else {
		l.plfs = plfs.New(&l.real, cfg.PlfsOptions)
	}
	// Ensure the shadow file exists (the analogue of /dev/random: any
	// always-openable file works; we only need its descriptors).
	fd, err := l.real.Open(cfg.ShadowPath, posix.O_CREAT|posix.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("ldplfs: create shadow file: %w", err)
	}
	l.real.Close(fd)

	d.OpenFn = l.open
	d.CloseFn = l.close
	d.ReadFn = l.read
	d.WriteFn = l.write
	d.PreadFn = l.pread
	d.PwriteFn = l.pwrite
	d.LseekFn = l.lseek
	d.FsyncFn = l.fsync
	d.FtruncateFn = l.ftruncate
	d.FstatFn = l.fstat
	d.StatFn = l.stat
	d.TruncateFn = l.truncate
	d.UnlinkFn = l.unlink
	d.MkdirFn = l.mkdir
	d.RmdirFn = l.rmdir
	d.ReaddirFn = l.readdir
	d.RenameFn = l.rename
	d.AccessFn = l.access
	return l, nil
}

// Unload restores the previous symbol bindings and closes any PLFS state
// still held by the lookup table (process exit).
func (l *LDPLFS) Unload() {
	l.table.Restore(l.real)
	l.mu.Lock()
	defer l.mu.Unlock()
	for fd, of := range l.files {
		of.file.Close(of.pid)
		l.real.Close(fd)
		delete(l.files, fd)
	}
}

// Plfs exposes the underlying PLFS library instance (tools use it).
func (l *LDPLFS) Plfs() *plfs.FS { return l.plfs }

func cleanPrefix(p string) string {
	p = strings.TrimRight(p, "/")
	if p == "" {
		return ""
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p
}

// resolve translates path to its backend location if it falls under a
// mount point. ok reports whether the path is PLFS-managed.
func (l *LDPLFS) resolve(path string) (backend string, ok bool) {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	for _, m := range l.cfg.Mounts {
		if path == m.Point {
			return m.Backend, true
		}
		if strings.HasPrefix(path, m.Point+"/") {
			return m.Backend + path[len(m.Point):], true
		}
	}
	return "", false
}

func (l *LDPLFS) lookup(fd int) (*openFile, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	of, ok := l.files[fd]
	return of, ok
}

// --- interposed symbols -------------------------------------------------

func (l *LDPLFS) open(path string, flags int, mode uint32) (int, error) {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Open(path, flags, mode)
	}
	l.Stats.Interposed.Add(1)

	// Directories under the mount (including the mount root) stay POSIX:
	// opendir et al. must keep working.
	if st, err := l.real.Stat(bpath); err == nil && st.IsDir() && !l.plfs.IsContainer(bpath) {
		return l.real.Open(bpath, flags, mode)
	}

	pf, err := l.plfs.Open(bpath, flags, l.cfg.Pid, mode)
	if err != nil {
		return -1, err
	}
	// Obtain a genuine descriptor for the application by opening the
	// shadow file — the paper's /dev/random trick.
	fd, err := l.real.Open(l.cfg.ShadowPath, posix.O_RDONLY, 0)
	if err != nil {
		pf.Close(l.cfg.Pid)
		return -1, fmt.Errorf("ldplfs: open shadow fd: %w", err)
	}
	if flags&posix.O_APPEND != 0 {
		size, serr := pf.Size()
		if serr != nil {
			pf.Close(l.cfg.Pid)
			l.real.Close(fd)
			return -1, serr
		}
		if _, serr := l.real.Lseek(fd, size, posix.SEEK_SET); serr != nil {
			pf.Close(l.cfg.Pid)
			l.real.Close(fd)
			return -1, serr
		}
	}
	l.mu.Lock()
	l.files[fd] = &openFile{file: pf, flags: flags, pid: l.cfg.Pid}
	l.mu.Unlock()
	return fd, nil
}

func (l *LDPLFS) close(fd int) error {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Close(fd)
	}
	l.Stats.Interposed.Add(1)
	l.mu.Lock()
	delete(l.files, fd)
	l.mu.Unlock()
	if err := of.file.Close(of.pid); err != nil {
		l.real.Close(fd)
		return err
	}
	return l.real.Close(fd)
}

// offset reads the current file pointer off the shadow descriptor.
func (l *LDPLFS) offset(fd int) (int64, error) {
	l.Stats.ShadowSeeks.Add(1)
	return l.real.Lseek(fd, 0, posix.SEEK_CUR)
}

// advance moves the shadow file pointer after a PLFS transfer.
func (l *LDPLFS) advance(fd int, pos int64) error {
	l.Stats.ShadowSeeks.Add(1)
	_, err := l.real.Lseek(fd, pos, posix.SEEK_SET)
	return err
}

func (l *LDPLFS) read(fd int, p []byte) (int, error) {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Read(fd, p)
	}
	l.Stats.Interposed.Add(1)
	off, err := l.offset(fd)
	if err != nil {
		return 0, err
	}
	n, err := of.file.Read(p, off)
	if err != nil {
		return n, err
	}
	if err := l.advance(fd, off+int64(n)); err != nil {
		return n, err
	}
	return n, nil
}

func (l *LDPLFS) write(fd int, p []byte) (int, error) {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Write(fd, p)
	}
	l.Stats.Interposed.Add(1)
	var off int64
	var err error
	if of.flags&posix.O_APPEND != 0 {
		if off, err = of.file.Size(); err != nil {
			return 0, err
		}
	} else if off, err = l.offset(fd); err != nil {
		return 0, err
	}
	n, err := of.file.Write(p, off, of.pid)
	if err != nil {
		return n, err
	}
	if err := l.advance(fd, off+int64(n)); err != nil {
		return n, err
	}
	return n, nil
}

// pread is the shim's read fast path: no shadow-offset bookkeeping, one
// shared-lock table lookup, then straight into plfs.File.Read — whose
// scatter-gather runs concurrently with every other reader of the
// container (the File serializes only writers).
func (l *LDPLFS) pread(fd int, p []byte, off int64) (int, error) {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Pread(fd, p, off)
	}
	l.Stats.Interposed.Add(1)
	return of.file.Read(p, off)
}

// pwrite is the shim's write fast path, the twin of pread: no
// shadow-offset bookkeeping, one shared-lock table lookup, then straight
// into plfs.File.Write — which serializes only against same-pid writes,
// so concurrent pwrites through the shim stream their droppings in
// parallel (the File takes its handle lock shared).
func (l *LDPLFS) pwrite(fd int, p []byte, off int64) (int, error) {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Pwrite(fd, p, off)
	}
	l.Stats.Interposed.Add(1)
	return of.file.Write(p, off, of.pid)
}

func (l *LDPLFS) lseek(fd int, offset int64, whence int) (int64, error) {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Lseek(fd, offset, whence)
	}
	l.Stats.Interposed.Add(1)
	// SEEK_SET and SEEK_CUR ride directly on the shadow descriptor, which
	// is the whole point of keeping it. SEEK_END needs the logical size
	// from PLFS first.
	if whence == posix.SEEK_END {
		size, err := of.file.Size()
		if err != nil {
			return 0, err
		}
		pos := size + offset
		if pos < 0 {
			return 0, posix.EINVAL
		}
		l.Stats.ShadowSeeks.Add(1)
		return l.real.Lseek(fd, pos, posix.SEEK_SET)
	}
	l.Stats.ShadowSeeks.Add(1)
	return l.real.Lseek(fd, offset, whence)
}

func (l *LDPLFS) fsync(fd int) error {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Fsync(fd)
	}
	l.Stats.Interposed.Add(1)
	return of.file.Sync(of.pid)
}

func (l *LDPLFS) ftruncate(fd int, size int64) error {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Ftruncate(fd, size)
	}
	l.Stats.Interposed.Add(1)
	return of.file.Trunc(size)
}

func (l *LDPLFS) fstat(fd int) (posix.Stat, error) {
	of, ok := l.lookup(fd)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Fstat(fd)
	}
	l.Stats.Interposed.Add(1)
	size, err := of.file.Size()
	if err != nil {
		return posix.Stat{}, err
	}
	return posix.Stat{Size: size, Mode: 0o644, Nlink: 1}, nil
}

func (l *LDPLFS) stat(path string) (posix.Stat, error) {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Stat(path)
	}
	l.Stats.Interposed.Add(1)
	if l.plfs.IsContainer(bpath) {
		return l.plfs.Stat(bpath)
	}
	return l.real.Stat(bpath)
}

func (l *LDPLFS) truncate(path string, size int64) error {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Truncate(path, size)
	}
	l.Stats.Interposed.Add(1)
	if l.plfs.IsContainer(bpath) {
		return l.plfs.Truncate(bpath, size)
	}
	return l.real.Truncate(bpath, size)
}

func (l *LDPLFS) unlink(path string) error {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Unlink(path)
	}
	l.Stats.Interposed.Add(1)
	if l.plfs.IsContainer(bpath) {
		return l.plfs.Unlink(bpath)
	}
	return l.real.Unlink(bpath)
}

func (l *LDPLFS) mkdir(path string, mode uint32) error {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Mkdir(path, mode)
	}
	l.Stats.Interposed.Add(1)
	return l.real.Mkdir(bpath, mode)
}

func (l *LDPLFS) rmdir(path string) error {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Rmdir(path)
	}
	l.Stats.Interposed.Add(1)
	if l.plfs.IsContainer(bpath) {
		// Containers present as files; rmdir on a file is ENOTDIR.
		return posix.ENOTDIR
	}
	return l.real.Rmdir(bpath)
}

func (l *LDPLFS) readdir(path string) ([]posix.DirEntry, error) {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Readdir(path)
	}
	l.Stats.Interposed.Add(1)
	entries, err := l.real.Readdir(bpath)
	if err != nil {
		return nil, err
	}
	// Containers appear as single files — the transparency FUSE provides,
	// recreated at the readdir level. The shadow file stays hidden.
	out := entries[:0]
	for _, e := range entries {
		if e.IsDir && l.plfs.IsContainer(bpath+"/"+e.Name) {
			e.IsDir = false
		}
		out = append(out, e)
	}
	return out, nil
}

func (l *LDPLFS) rename(oldpath, newpath string) error {
	bold, ok1 := l.resolve(oldpath)
	bnew, ok2 := l.resolve(newpath)
	switch {
	case !ok1 && !ok2:
		l.Stats.PassedThru.Add(1)
		return l.real.Rename(oldpath, newpath)
	case ok1 != ok2:
		// Cross-device rename between PLFS and non-PLFS space: POSIX
		// returns EXDEV; the paper's tools then fall back to copy. We
		// surface EINVAL (no EXDEV in our errno set) to force the same
		// fallback.
		return posix.EINVAL
	}
	l.Stats.Interposed.Add(1)
	if l.plfs.IsContainer(bold) {
		return l.plfs.Rename(bold, bnew)
	}
	return l.real.Rename(bold, bnew)
}

func (l *LDPLFS) access(path string, mode int) error {
	bpath, ok := l.resolve(path)
	if !ok {
		l.Stats.PassedThru.Add(1)
		return l.real.Access(path, mode)
	}
	l.Stats.Interposed.Add(1)
	return l.real.Access(bpath, mode)
}
