package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// newEnv builds a process image: a MemFS "system", a dispatch table, and
// the shim preloaded over mount /mnt/plfs -> /backend.
func newEnv(t *testing.T) (*posix.Dispatch, *LDPLFS, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	for _, dir := range []string{"/backend", "/home", "/mnt"} {
		if err := mem.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	d := posix.NewDispatch(mem)
	l, err := Preload(d, Config{
		Mounts:      []Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:         42,
		PlfsOptions: plfs.Options{NumHostdirs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, l, mem
}

func TestOpenUnderMountCreatesContainer(t *testing.T) {
	d, l, mem := newEnv(t)
	fd, err := d.Open("/mnt/plfs/out.dat", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(fd, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}
	// The application never sees it, but /backend/out.dat is a container.
	if !l.Plfs().IsContainer("/backend/out.dat") {
		t.Fatal("no container materialised in the backend")
	}
	if st, err := mem.Stat("/backend/out.dat"); err != nil || !st.IsDir() {
		t.Fatalf("backend entry: %+v, %v", st, err)
	}
	// And the application-visible stat presents a 5-byte plain file.
	st, err := d.Stat("/mnt/plfs/out.dat")
	if err != nil || st.Size != 5 || st.IsDir() {
		t.Fatalf("Stat through shim = %+v, %v", st, err)
	}
}

func TestReadWriteRoundTripThroughShim(t *testing.T) {
	d, _, _ := newEnv(t)
	payload := []byte("interposed bytes travel through plfs")
	fd, err := d.Open("/mnt/plfs/rt", posix.O_CREAT|posix.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.Write(fd, payload); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	// The implicit file pointer must have advanced (shadow-fd lseek).
	if pos, err := d.Lseek(fd, 0, posix.SEEK_CUR); err != nil || pos != int64(len(payload)) {
		t.Fatalf("pointer after write = %d, %v", pos, err)
	}
	if _, err := d.Lseek(fd, 0, posix.SEEK_SET); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if n, err := d.Read(fd, got); err != nil || n != len(payload) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Read = %q", got)
	}
	// Sequential reads continue from the pointer.
	d.Lseek(fd, 0, posix.SEEK_SET)
	half := len(payload) / 2
	d.Read(fd, got[:half])
	n, err := d.Read(fd, got[half:])
	if err != nil || n != len(payload)-half {
		t.Fatalf("second Read = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("piecewise Read = %q", got)
	}
	d.Close(fd)
}

func TestPassthroughOutsideMount(t *testing.T) {
	d, l, mem := newEnv(t)
	fd, err := d.Open("/home/notes.txt", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(fd, []byte("plain"))
	d.Close(fd)
	// The file is a plain file on the underlying FS, not a container.
	st, err := mem.Stat("/home/notes.txt")
	if err != nil || st.IsDir() || st.Size != 5 {
		t.Fatalf("passthrough file: %+v, %v", st, err)
	}
	if l.Stats.Interposed.Load() != 0 {
		t.Fatalf("interposed %d calls for non-PLFS path", l.Stats.Interposed.Load())
	}
	if l.Stats.PassedThru.Load() == 0 {
		t.Fatal("passthrough counter never moved")
	}
}

func TestLseekSemantics(t *testing.T) {
	d, _, _ := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/seek", posix.O_CREAT|posix.O_RDWR, 0o644)
	d.Write(fd, make([]byte, 100))

	if pos, err := d.Lseek(fd, 0, posix.SEEK_END); err != nil || pos != 100 {
		t.Fatalf("SEEK_END = %d, %v", pos, err)
	}
	if pos, err := d.Lseek(fd, -40, posix.SEEK_END); err != nil || pos != 60 {
		t.Fatalf("SEEK_END-40 = %d, %v", pos, err)
	}
	if pos, err := d.Lseek(fd, 10, posix.SEEK_CUR); err != nil || pos != 70 {
		t.Fatalf("SEEK_CUR+10 = %d, %v", pos, err)
	}
	// Seek beyond EOF then write: hole + data.
	if _, err := d.Lseek(fd, 200, posix.SEEK_SET); err != nil {
		t.Fatal(err)
	}
	d.Write(fd, []byte("z"))
	st, _ := d.Fstat(fd)
	if st.Size != 201 {
		t.Fatalf("size after sparse write = %d", st.Size)
	}
	buf := make([]byte, 1)
	d.Lseek(fd, 150, posix.SEEK_SET)
	d.Read(fd, buf)
	if buf[0] != 0 {
		t.Fatalf("hole read %d", buf[0])
	}
	d.Close(fd)
}

func TestAppendMode(t *testing.T) {
	d, _, _ := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/log", posix.O_CREAT|posix.O_WRONLY|posix.O_APPEND, 0o644)
	d.Write(fd, []byte("one."))
	d.Close(fd)
	fd, _ = d.Open("/mnt/plfs/log", posix.O_WRONLY|posix.O_APPEND, 0o644)
	// Even after an explicit rewind, O_APPEND writes land at EOF.
	d.Lseek(fd, 0, posix.SEEK_SET)
	d.Write(fd, []byte("two."))
	d.Close(fd)

	fd, _ = d.Open("/mnt/plfs/log", posix.O_RDONLY, 0)
	got := make([]byte, 8)
	n, err := d.Read(fd, got)
	if err != nil || n != 8 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if string(got) != "one.two." {
		t.Fatalf("append content = %q", got)
	}
	d.Close(fd)
}

func TestPreadPwriteDoNotMovePointer(t *testing.T) {
	d, _, _ := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/pp", posix.O_CREAT|posix.O_RDWR, 0o644)
	d.Pwrite(fd, []byte("abcdef"), 0)
	if pos, _ := d.Lseek(fd, 0, posix.SEEK_CUR); pos != 0 {
		t.Fatalf("pointer moved by pwrite: %d", pos)
	}
	buf := make([]byte, 3)
	if n, err := d.Pread(fd, buf, 3); err != nil || n != 3 || string(buf) != "def" {
		t.Fatalf("Pread = %q, %d, %v", buf, n, err)
	}
	if pos, _ := d.Lseek(fd, 0, posix.SEEK_CUR); pos != 0 {
		t.Fatalf("pointer moved by pread: %d", pos)
	}
	d.Close(fd)
}

func TestReaddirPresentsContainersAsFiles(t *testing.T) {
	d, _, _ := newEnv(t)
	for _, name := range []string{"a.chk", "b.chk"} {
		fd, _ := d.Open("/mnt/plfs/"+name, posix.O_CREAT|posix.O_WRONLY, 0o644)
		d.Write(fd, []byte("x"))
		d.Close(fd)
	}
	d.Mkdir("/mnt/plfs/subdir", 0o755)
	entries, err := d.Readdir("/mnt/plfs")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]posix.DirEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e := byName["a.chk"]; e.IsDir {
		t.Fatal("container listed as directory")
	}
	if e := byName["subdir"]; !e.IsDir {
		t.Fatal("plain directory lost its dir bit")
	}
}

func TestUnlinkAndRename(t *testing.T) {
	d, l, _ := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/victim", posix.O_CREAT|posix.O_WRONLY, 0o644)
	d.Write(fd, []byte("data"))
	d.Close(fd)
	if err := d.Rename("/mnt/plfs/victim", "/mnt/plfs/renamed"); err != nil {
		t.Fatal(err)
	}
	if l.Plfs().IsContainer("/backend/victim") {
		t.Fatal("old container survives rename")
	}
	st, err := d.Stat("/mnt/plfs/renamed")
	if err != nil || st.Size != 4 {
		t.Fatalf("renamed stat = %+v, %v", st, err)
	}
	if err := d.Unlink("/mnt/plfs/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("/mnt/plfs/renamed"); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("stat after unlink = %v", err)
	}
	// Cross-mount rename is refused (copy fallback expected).
	fd, _ = d.Open("/home/x", posix.O_CREAT|posix.O_WRONLY, 0o644)
	d.Close(fd)
	if err := d.Rename("/home/x", "/mnt/plfs/x"); err == nil {
		t.Fatal("cross-device rename succeeded; want error")
	}
}

func TestTruncateThroughShim(t *testing.T) {
	d, _, _ := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/t", posix.O_CREAT|posix.O_RDWR, 0o644)
	d.Write(fd, make([]byte, 1000))
	if err := d.Ftruncate(fd, 100); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Fstat(fd)
	if st.Size != 100 {
		t.Fatalf("size after ftruncate = %d", st.Size)
	}
	d.Close(fd)
	if err := d.Truncate("/mnt/plfs/t", 0); err != nil {
		t.Fatal(err)
	}
	st, _ = d.Stat("/mnt/plfs/t")
	if st.Size != 0 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
}

func TestMkdirUnderMountStaysPosix(t *testing.T) {
	d, _, mem := newEnv(t)
	if err := d.Mkdir("/mnt/plfs/vis", 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := mem.Stat("/backend/vis")
	if err != nil || !st.IsDir() {
		t.Fatalf("backend dir = %+v, %v", st, err)
	}
	// Files within the subdirectory become containers.
	fd, err := d.Open("/mnt/plfs/vis/dump.h5", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(fd, []byte("hdf"))
	d.Close(fd)
	st2, err := mem.Stat("/backend/vis/dump.h5")
	if err != nil || !st2.IsDir() {
		t.Fatalf("nested container: %+v, %v", st2, err)
	}
	if err := d.Rmdir("/mnt/plfs/vis"); !errors.Is(err, posix.ENOTEMPTY) {
		t.Fatalf("rmdir nonempty = %v", err)
	}
	d.Unlink("/mnt/plfs/vis/dump.h5")
	if err := d.Rmdir("/mnt/plfs/vis"); err != nil {
		t.Fatal(err)
	}
}

func TestUnloadRestoresSymbols(t *testing.T) {
	d, l, mem := newEnv(t)
	l.Unload()
	// After unload, opens under the mount hit the raw path (ENOENT since
	// /mnt/plfs does not exist on the underlying FS).
	if _, err := d.Open("/mnt/plfs/after", posix.O_CREAT|posix.O_WRONLY, 0o644); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("open after unload = %v, want raw ENOENT", err)
	}
	_ = mem
}

func TestUnloadClosesOpenHandles(t *testing.T) {
	d, l, mem := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/open", posix.O_CREAT|posix.O_WRONLY, 0o644)
	d.Write(fd, []byte("dangling"))
	l.Unload() // process exit with the fd still open
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("%d fds leak after unload", got)
	}
}

func TestShadowFdBookkeeping(t *testing.T) {
	d, l, _ := newEnv(t)
	fd, _ := d.Open("/mnt/plfs/sb", posix.O_CREAT|posix.O_RDWR, 0o644)
	before := l.Stats.ShadowSeeks.Load()
	d.Write(fd, []byte("abc")) // offset fetch + advance = 2 lseeks
	after := l.Stats.ShadowSeeks.Load()
	if after-before != 2 {
		t.Fatalf("write cost %d shadow seeks, want 2", after-before)
	}
	d.Close(fd)
}

func TestStackedShims(t *testing.T) {
	// A tracing shim loaded before LDPLFS keeps seeing the calls LDPLFS
	// passes down — the paper's footnote about composing with tracers.
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	d := posix.NewDispatch(mem)

	traced := 0
	prev := d.Snapshot()
	d.OpenFn = func(path string, flags int, mode uint32) (int, error) {
		traced++
		return prev.OpenFn(path, flags, mode)
	}

	l, err := Preload(d, Config{
		Mounts: []Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	traced = 0
	fd, err := d.Open("/mnt/plfs/x", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(fd, []byte("y"))
	d.Close(fd)
	// The tracer saw the shim's internal opens (droppings, shadow), proving
	// LDPLFS chained to the previous symbols rather than the raw FS.
	if traced == 0 {
		t.Fatal("tracer below LDPLFS saw nothing")
	}
	l.Unload()
}

func TestMultipleMounts(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/b1", 0o755)
	mem.Mkdir("/b2", 0o755)
	d := posix.NewDispatch(mem)
	l, err := Preload(d, Config{
		Mounts: []Mount{
			{Point: "/mnt/one", Backend: "/b1"},
			{Point: "/mnt/two", Backend: "/b2"},
		},
		Pid: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"/mnt/one/f", "/mnt/two/f"} {
		fd, err := d.Open(m, posix.O_CREAT|posix.O_WRONLY, 0o644)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		d.Write(fd, []byte(m))
		d.Close(fd)
	}
	if !l.Plfs().IsContainer("/b1/f") || !l.Plfs().IsContainer("/b2/f") {
		t.Fatal("containers missing in one of the backends")
	}
}

func TestParseMounts(t *testing.T) {
	mounts, err := ParseMounts("/mnt/plfs=/backend,/scratch=/lustre/plfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(mounts) != 2 || mounts[1].Backend != "/lustre/plfs" {
		t.Fatalf("mounts = %+v", mounts)
	}
	for _, bad := range []string{"", "nonsense", "a=,b", "=x"} {
		if _, err := ParseMounts(bad); err == nil {
			t.Fatalf("ParseMounts(%q) accepted", bad)
		}
	}
}

// TestShimMatchesPlainPosix drives an identical random workload through
// (a) the shim onto PLFS and (b) plain POSIX, and requires identical
// observable file content — the application cannot tell it was rerouted.
func TestShimMatchesPlainPosix(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))

		d, _, _ := newEnv(t)
		plainFS := posix.NewMemFS()
		plain := posix.NewDispatch(plainFS)

		pfd, err := d.Open("/mnt/plfs/w", posix.O_CREAT|posix.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		qfd, err := plain.Open("/w", posix.O_CREAT|posix.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}

		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0, 1: // write
				buf := make([]byte, 1+rng.Intn(256))
				rng.Read(buf)
				pn, perr := d.Write(pfd, buf)
				qn, qerr := plain.Write(qfd, buf)
				if pn != qn || (perr == nil) != (qerr == nil) {
					t.Fatalf("seed %d: write diverged: %d/%v vs %d/%v", seed, pn, perr, qn, qerr)
				}
			case 2: // read
				pb := make([]byte, 1+rng.Intn(256))
				qb := make([]byte, len(pb))
				pn, _ := d.Read(pfd, pb)
				qn, _ := plain.Read(qfd, qb)
				if pn != qn || !bytes.Equal(pb[:pn], qb[:qn]) {
					t.Fatalf("seed %d op %d: read diverged (%d vs %d)", seed, op, pn, qn)
				}
			case 3: // seek
				off := int64(rng.Intn(4096))
				whence := []int{posix.SEEK_SET, posix.SEEK_CUR, posix.SEEK_END}[rng.Intn(3)]
				pp, perr := d.Lseek(pfd, off, whence)
				qp, qerr := plain.Lseek(qfd, off, whence)
				if pp != qp || (perr == nil) != (qerr == nil) {
					t.Fatalf("seed %d: lseek diverged: %d/%v vs %d/%v", seed, pp, perr, qp, qerr)
				}
			case 4: // fstat
				pst, _ := d.Fstat(pfd)
				qst, _ := plain.Fstat(qfd)
				if pst.Size != qst.Size {
					t.Fatalf("seed %d: size diverged: %d vs %d", seed, pst.Size, qst.Size)
				}
			}
		}
		d.Close(pfd)
		plain.Close(qfd)
	}
}
