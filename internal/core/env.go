package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Environment variables understood by PreloadFromEnv, mirroring how the
// real LDPLFS is driven entirely from the environment ("requires only a
// simple environment variable to be exported").
const (
	// EnvMounts lists mount mappings: "point=backend[,point=backend...]".
	EnvMounts = "LDPLFS_MNT"
	// EnvPid overrides the writer id (defaults to the process pid, exactly
	// as the paper passes getpid()).
	EnvPid = "LDPLFS_PID"
)

// ParseMounts parses the EnvMounts syntax.
func ParseMounts(spec string) ([]Mount, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("ldplfs: empty %s", EnvMounts)
	}
	var mounts []Mount
	for _, part := range strings.Split(spec, ",") {
		point, backend, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || point == "" || backend == "" {
			return nil, fmt.Errorf("ldplfs: bad mount spec %q (want point=backend)", part)
		}
		mounts = append(mounts, Mount{Point: point, Backend: backend})
	}
	return mounts, nil
}

// ConfigFromEnv builds a Config from the environment.
func ConfigFromEnv(getenv func(string) string) (Config, error) {
	if getenv == nil {
		getenv = os.Getenv
	}
	mounts, err := ParseMounts(getenv(EnvMounts))
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Mounts: mounts, Pid: uint32(os.Getpid())}
	if v := getenv(EnvPid); v != "" {
		pid, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return Config{}, fmt.Errorf("ldplfs: bad %s: %w", EnvPid, err)
		}
		cfg.Pid = uint32(pid)
	}
	return cfg, nil
}
