package core

import (
	"bytes"
	"errors"
	"testing"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// faultEnv builds a shimmed process over a fault-injecting backend.
func faultEnv(t *testing.T) (*posix.Dispatch, *posix.FaultFS) {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	ffs := posix.NewFaultFS(mem)
	d := posix.NewDispatch(ffs)
	if _, err := Preload(d, Config{
		Mounts:      []Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:         1,
		PlfsOptions: plfs.Options{NumHostdirs: 2},
	}); err != nil {
		t.Fatal(err)
	}
	return d, ffs
}

func TestWriteFailurePropagatesThroughShim(t *testing.T) {
	d, ffs := faultEnv(t)
	fd, err := d.Open("/mnt/plfs/f", posix.O_CREAT|posix.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// First write succeeds, then the device fills up.
	if _, err := d.Write(fd, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&posix.FaultRule{Op: posix.FaultWrite, Err: posix.ENOSPC})
	if _, err := d.Write(fd, []byte("doomed")); !errors.Is(err, posix.ENOSPC) {
		t.Fatalf("write under ENOSPC = %v, want ENOSPC", err)
	}
	ffs.Clear()
	// The handle survives the failure; the successful data is intact.
	buf := make([]byte, 2)
	if _, err := d.Pread(fd, buf, 0); err != nil || !bytes.Equal(buf, []byte("ok")) {
		t.Fatalf("data after failed write: %q, %v", buf, err)
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func TestOpenFailureDoesNotLeakShadowFds(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	ffs := posix.NewFaultFS(mem)
	d := posix.NewDispatch(ffs)
	if _, err := Preload(d, Config{
		Mounts: []Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:    1,
	}); err != nil {
		t.Fatal(err)
	}
	// Fail the creation of the container's version file and beyond: the
	// fifth matching open under the backend fails.
	ffs.Inject(&posix.FaultRule{Op: posix.FaultOpen, PathContains: "/backend/x", After: 0, Err: posix.EACCES})
	if _, err := d.Open("/mnt/plfs/x", posix.O_CREAT|posix.O_WRONLY, 0o644); err == nil {
		t.Fatal("open should fail when the backend refuses")
	}
	ffs.Clear()
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("%d backend fds leaked after failed open", got)
	}
}

func TestReadFailureSurfaces(t *testing.T) {
	d, ffs := faultEnv(t)
	fd, _ := d.Open("/mnt/plfs/r", posix.O_CREAT|posix.O_RDWR, 0o644)
	d.Write(fd, make([]byte, 4096))
	d.Close(fd)

	fd, err := d.Open("/mnt/plfs/r", posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&posix.FaultRule{Op: posix.FaultRead, Err: posix.EIO})
	if _, err := d.Read(fd, make([]byte, 128)); err == nil {
		t.Fatal("read under injected EIO succeeded")
	}
	ffs.Clear()
	if n, err := d.Read(fd, make([]byte, 128)); err != nil || n != 128 {
		t.Fatalf("read after fault cleared = %d, %v", n, err)
	}
	d.Close(fd)
}

func TestMetaFailureDuringStat(t *testing.T) {
	d, ffs := faultEnv(t)
	fd, _ := d.Open("/mnt/plfs/s", posix.O_CREAT|posix.O_WRONLY, 0o644)
	d.Write(fd, []byte("abc"))
	d.Close(fd)

	// The shim stats twice per application stat: the IsContainer probe
	// (whose failure it tolerates, degrading to a plain stat — what the
	// real shim's container check does) and the fallback stat itself.
	// Failing both surfaces the error to the application.
	ffs.Inject(&posix.FaultRule{Op: posix.FaultMeta, PathContains: "/backend/s", Times: 2, Err: posix.EACCES})
	if _, err := d.Stat("/mnt/plfs/s"); err == nil {
		t.Fatal("stat under injected EACCES succeeded")
	}
	// Once the flake passes, stat works again.
	if st, err := d.Stat("/mnt/plfs/s"); err != nil || st.Size != 3 {
		t.Fatalf("stat after flake = %+v, %v", st, err)
	}
	if ffs.Fired() != 2 {
		t.Fatalf("rule fired %d times, want 2", ffs.Fired())
	}
}

func TestTransientSyncFailure(t *testing.T) {
	d, ffs := faultEnv(t)
	fd, _ := d.Open("/mnt/plfs/sync", posix.O_CREAT|posix.O_WRONLY, 0o644)
	d.Write(fd, []byte("x"))
	ffs.Inject(&posix.FaultRule{Op: posix.FaultSync, Times: 1, Err: posix.EIO})
	if err := d.Fsync(fd); err == nil {
		t.Fatal("fsync under injected fault succeeded")
	}
	if err := d.Fsync(fd); err != nil {
		t.Fatalf("fsync retry failed: %v", err)
	}
	d.Close(fd)
}
