package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one loaded, type-checked package — the unit an Analyzer
// runs over.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Loader type-checks packages of the enclosing module without any
// dependency beyond the go toolchain: package metadata comes from
// `go list -json`, module sources are parsed and checked directly, and
// standard-library imports resolve through the stdlib's own
// source-level importer (go/importer "source"), which compiles them
// from GOROOT on demand and caches the result. One Loader shares one
// FileSet and one type-object world, so positions and types.Object
// identities are consistent across every package it returns.
type Loader struct {
	mu     sync.Mutex
	dir    string // module-relative working directory for `go list`
	fset   *token.FileSet
	src    types.ImporterFrom
	meta   map[string]*listedPackage
	loaded map[string]*Package
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// NewLoader returns a loader that resolves patterns relative to dir
// (any directory inside the module).
func NewLoader(dir string) *Loader {
	// The source importer consults the global build context. Cgo is
	// disabled so packages with C fallbacks (net, os/user) resolve to
	// their pure-Go variants, which type-check from source.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		dir:    dir,
		fset:   fset,
		src:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		meta:   make(map[string]*listedPackage),
		loaded: make(map[string]*Package),
	}
}

// Fset exposes the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the go-list patterns (e.g. "./...") and returns the
// matched module packages, type-checked, in deterministic order.
// Standard-library matches are resolved for import but never returned
// for analysis.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	sort.Strings(roots)
	out := make([]*Package, 0, len(roots))
	for _, path := range roots {
		pkg, err := l.loadLocked(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir —
// typically an analysistest fixture under testdata/, invisible to
// go-list wildcards. Imports resolve against the module the loader was
// created in.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.checkLocked(abs, abs, files, nil)
}

// list runs `go list` for the patterns, merges the metadata of every
// matched package and its dependency closure into l.meta, and returns
// the import paths of the non-stdlib root matches.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,ImportMap,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("analysis: go list %v: %v: %s", patterns, err, ee.Stderr)
		}
		return nil, fmt.Errorf("analysis: go list %v: %w", patterns, err)
	}
	var roots []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analysis: go list decode: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		l.meta[p.ImportPath] = &p
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p.ImportPath)
		}
	}
	return roots, nil
}

// loadLocked returns the type-checked package for a module import path,
// loading (and caching) it on first use.
func (l *Loader) loadLocked(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	m := l.meta[path]
	if m == nil {
		return nil, fmt.Errorf("analysis: package %s not listed", path)
	}
	files := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		files[i] = filepath.Join(m.Dir, f)
	}
	pkg, err := l.checkLocked(path, m.Dir, files, m.ImportMap)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// checkLocked parses and type-checks one package from explicit files.
func (l *Loader) checkLocked(path, dir string, files []string, importMap map[string]string) (*Package, error) {
	syntax := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if mapped, ok := importMap[ip]; ok {
				ip = mapped
			}
			return l.importLocked(ip, dir)
		}),
	}
	tpkg, err := conf.Check(path, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// importLocked resolves one import: module packages re-enter loadLocked
// (listing them on demand if a fixture imported something outside the
// already-listed closure), everything else goes to the source importer.
func (l *Loader) importLocked(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	m := l.meta[path]
	if m == nil {
		// First sight of this path (fixture import): list its closure.
		if _, err := l.list([]string{path}); err != nil {
			return nil, err
		}
		m = l.meta[path]
		if m == nil {
			return nil, fmt.Errorf("analysis: cannot resolve import %s (from %s)", path, srcDir)
		}
	}
	if m.Standard {
		return l.src.ImportFrom(path, srcDir, 0)
	}
	pkg, err := l.loadLocked(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}
