// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments in the
// fixture source — the same golden-comment contract as
// golang.org/x/tools/go/analysis/analysistest, on the in-repo framework.
//
// Fixtures live under <testdata>/src/<name>/*.go and are ordinary
// compilable Go: testdata is invisible to `go build ./...`, so a
// fixture may violate every invariant the analyzers enforce without
// breaking the build. Inline `//plfslint:ignore` comments are honored
// exactly as the driver honors them, so fixtures also pin the
// suppression behavior.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ldplfs/internal/analysis"
)

var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func sharedLoader() *analysis.Loader {
	loaderOnce.Do(func() { loader = analysis.NewLoader(".") })
	return loader
}

// want is one expectation: a diagnostic matching re must appear at
// file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// Run loads each fixture package under <testdata>/src and checks the
// analyzer's surviving (non-suppressed) diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := sharedLoader().LoadDir(dir)
		if err != nil {
			t.Errorf("%s: load: %v", name, err)
			continue
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Errorf("%s: run: %v", name, err)
			continue
		}
		kept, _ := analysis.Suppress(diags, analysis.ParseIgnores(pkg.Fset, pkg.Syntax))
		checkWants(t, name, pkg, kept)
	}
}

func checkWants(t *testing.T, name string, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", name, base(w.file), w.line, w.re)
		}
	}
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
