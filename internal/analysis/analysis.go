// Package analysis is a self-contained, dependency-free reimplementation
// of the golang.org/x/tools/go/analysis surface this repository needs:
// an Analyzer runs over one type-checked package at a time and reports
// position-anchored Diagnostics. The build environment pins the module
// to the standard library, so rather than importing x/tools we keep the
// same shape (Analyzer / Pass / Diagnostic, an analysistest harness, a
// multichecker driver) on top of go/ast + go/types — small enough to
// read in one sitting, close enough that swapping the real framework in
// later is a mechanical rename.
//
// See doc.go for the catalogue of invariants the shipped analyzers
// enforce and the history of the bugs behind them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools there is no
// Requires graph — the five plfslint analyzers are independent.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, inline suppression
	// comments and the allowlist. Lowercase, no spaces.
	Name string

	// Doc is the one-paragraph description `plfslint -list` prints.
	Doc string

	// Run performs the check on one package and reports findings
	// through pass.Report/Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package's import path (or fixture directory for
	// analysistest packages).
	Path string

	diags []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Diagnostics returns the findings accumulated so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Run executes one analyzer over one loaded package and returns its
// findings (inline suppressions NOT yet applied — the driver and
// analysistest each decide how to treat them).
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Path:      pkg.ImportPath,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return pass.diags, nil
}
