// Package errnopreserve flags error wrapping that severs the
// syscall-errno chain in packages whose errors reach the wire.
//
// The PR 6 gateway protocol answers every request with an i32 errno
// status: service.ErrnoOf walks the error chain with errors.As looking
// for a posix.Errno, and anything unrecognizable degrades to EIO. That
// makes lossless wrapping a protocol obligation in internal/service,
// internal/service/client, internal/posix and the daemon: an error
// formatted with %v or %s (instead of %w) — or stringified via
// err.Error() — still reads fine in a log line but turns ENOENT into
// EIO on the wire, and remote tools start taking the wrong fallback
// paths.
//
// Two forms are flagged:
//
//   - fmt.Errorf with an error-typed argument formatted by a verb other
//     than %w,
//   - err.Error() used as an argument to any formatting or
//     concatenation that builds a new error (fmt.Errorf / errors.New
//     arguments).
package errnopreserve

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"ldplfs/internal/analysis"
)

// Analyzer is the production instance.
var Analyzer = &analysis.Analyzer{
	Name: "errnopreserve",
	Doc: "flags fmt.Errorf wrapping that drops syscall errnos (%v/%s on an error " +
		"instead of %w) in packages whose errors cross the wire as i32 status",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleePath(pass, call) {
			case "fmt.Errorf":
				checkErrorf(pass, call)
			case "errors.New":
				for _, arg := range call.Args {
					checkStringified(pass, arg)
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorf verifies the verb/argument pairing of one fmt.Errorf
// call.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 1 {
		return
	}
	format, ok := stringConstant(pass, call.Args[0])
	args := call.Args[1:]
	if !ok {
		// Non-constant format: fall back to stringification checks.
		for _, arg := range args {
			checkStringified(pass, arg)
		}
		return
	}
	verbs := parseVerbs(format)
	for i, arg := range args {
		checkStringified(pass, arg)
		if i >= len(verbs) {
			break
		}
		if verbs[i] == 'w' {
			continue
		}
		if isErrorType(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"error wrapped with %%%c drops its errno chain: use %%w so errors.As finds the posix.Errno behind the wire's i32 status", verbs[i])
		}
	}
}

// checkStringified flags err.Error() anywhere inside an argument that
// builds a new error — including string concatenation like
// errors.New("x: " + err.Error()).
func checkStringified(pass *analysis.Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" {
			return true
		}
		if isErrorType(pass.TypesInfo.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(),
				"err.Error() flattens the error to a string and drops its errno chain: wrap with %%w instead")
		}
		return true
	})
}

// parseVerbs returns the conversion verbs of a format string in
// argument order ('*' width/precision arguments appear as '*').
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; a '*' consumes an argument.
	loop:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '*':
				verbs = append(verbs, '*')
			case c == '%':
				break loop // literal %%
			case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
				verbs = append(verbs, c)
				break loop
			case strings.ContainsRune("+-# .0123456789[]", rune(c)):
				// modifier: keep scanning
			default:
				break loop
			}
		}
	}
	return verbs
}

// stringConstant extracts a compile-time string value.
func stringConstant(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// calleePath renders a called function as "pkg.Func" for stdlib
// package-level callees.
func calleePath(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
