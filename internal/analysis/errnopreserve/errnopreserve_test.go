package errnopreserve_test

import (
	"testing"

	"ldplfs/internal/analysis/analysistest"
	"ldplfs/internal/analysis/errnopreserve"
)

func TestErrnoPreserve(t *testing.T) {
	analysistest.Run(t, "testdata", errnopreserve.Analyzer, "a")
}
