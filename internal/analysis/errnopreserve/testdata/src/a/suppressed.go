package a

import "fmt"

// A deliberately terminal error (the chain is summarized for a log
// boundary, never sent on the wire) is silenced with an inline ignore.
func suppressedSummary(err error) error {
	//plfslint:ignore errnopreserve fixture pins that a justified ignore suppresses the wrapping finding
	return fmt.Errorf("giving up: %v", err)
}
