// Fixture for the errnopreserve analyzer: error wrapping that keeps
// or drops the syscall-errno chain.
package a

import (
	"errors"
	"fmt"
)

// Errno stands in for posix.Errno: the concrete payload errors.As
// digs for when the gateway maps an error to the wire's i32 status.
type Errno int

func (e Errno) Error() string { return "errno" }

// %w preserves the chain: ErrnoOf still finds the Errno underneath.
func wrapOK(path string, err error) error {
	return fmt.Errorf("open %s: %w", path, err)
}

// Regression: the PR 7 daemon bug. %v formats the error into the
// message string; the chain ends here and ENOENT degrades to EIO on
// the wire.
func wrapV(s string, err error) error {
	return fmt.Errorf("tenant spec %q: %v", s, err) // want `error wrapped with %v drops its errno chain`
}

func wrapS(err error) error {
	return fmt.Errorf("lookup failed: %s", err) // want `error wrapped with %s drops its errno chain`
}

// Concrete error types are caught too, not just the error interface.
func wrapErrno(e Errno) error {
	return fmt.Errorf("syscall: %d failed: %v", 42, e) // want `error wrapped with %v drops its errno chain`
}

// err.Error() flattens to a string before the verb is even consulted.
func stringified(err error) error {
	return fmt.Errorf("read: %s", err.Error()) // want `err\.Error\(\) flattens the error to a string`
}

func stringifiedNew(err error) error {
	return errors.New("write: " + err.Error()) // want `err\.Error\(\) flattens the error to a string`
}

// Literal %% consumes no argument; the pairing stays aligned.
func percentLiteral(err error) error {
	return fmt.Errorf("100%% of retries spent: %w", err)
}

// Flags, width and precision don't shift the verb/argument pairing.
func modifiers(name string, err error) error {
	return fmt.Errorf("%-8s: %w", name, err)
}

// A '*' width consumes an argument of its own.
func starWidth(w, n int, err error) error {
	return fmt.Errorf("%*d: %v", w, n, err) // want `error wrapped with %v drops its errno chain`
}

// Non-error arguments under %v are fine; only errors carry a chain.
func nonError(path string, n int) error {
	return fmt.Errorf("short write %s: %d bytes", path, n)
}
