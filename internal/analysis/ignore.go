package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// Inline suppression: a finding is silenced by a comment of the form
//
//	//plfslint:ignore <analyzer> <justification...>
//
// on the flagged line or the line directly above it. The justification
// is mandatory. The driver additionally requires every inline ignore to
// be covered by an entry in the checked-in allowlist (plfslint.allow),
// so a suppression can never land silently — see doc.go.

// Ignore is one parsed inline suppression comment.
type Ignore struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	used     bool
}

const ignorePrefix = "//plfslint:ignore"

// ParseIgnores extracts every inline suppression from the files.
func ParseIgnores(fset *token.FileSet, files []*ast.File) []*Ignore {
	var out []*Ignore
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, &Ignore{
					Pos:      fset.Position(c.Pos()),
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// Suppress splits diags into kept and suppressed according to the
// inline ignores, marking the ignores it consumed.
func Suppress(diags []Diagnostic, ignores []*Ignore) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		matched := false
		for _, ig := range ignores {
			if ig.Analyzer != d.Analyzer || ig.Pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.Pos.Line == d.Pos.Line || ig.Pos.Line == d.Pos.Line-1 {
				ig.used = true
				matched = true
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// AllowEntry is one line of the checked-in allowlist: an analyzer name,
// a module-relative file path, and a mandatory justification.
type AllowEntry struct {
	Analyzer string
	File     string
	Reason   string
	Line     int
	used     bool
}

// LoadAllowlist parses the allowlist file. Blank lines and #-comments
// are skipped; every other line is `analyzer<space>path<space>reason`.
func LoadAllowlist(path string) ([]*AllowEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*AllowEntry
	sc := bufio.NewScanner(f)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs `analyzer path justification`, got %q", path, ln, line)
		}
		out = append(out, &AllowEntry{
			Analyzer: fields[0],
			File:     filepath.ToSlash(fields[1]),
			Reason:   strings.Join(fields[2:], " "),
			Line:     ln,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// allow reports whether an entry covers the ignore at file (a
// module-relative slash path).
func allowCovers(entries []*AllowEntry, analyzer, file string) bool {
	ok := false
	for _, e := range entries {
		if e.Analyzer == analyzer && e.File == file {
			e.used = true
			ok = true
		}
	}
	return ok
}
