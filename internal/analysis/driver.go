package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Check is one analyzer plus the import-path scope it runs over.
type Check struct {
	Analyzer *Analyzer

	// Packages lists the import paths the analyzer applies to: an exact
	// path, or a `prefix/...` subtree. Empty means every package.
	Packages []string
}

// Driver is the multichecker: it loads packages, runs each scoped
// analyzer, applies inline suppressions, and enforces that every
// suppression is covered by the checked-in allowlist.
type Driver struct {
	Checks []Check

	// Allowlist is the path of the suppression allowlist file ("" =
	// no suppressions are permitted at all).
	Allowlist string

	// Out receives findings, one line each ("" discards).
	Out io.Writer
}

// Run analyzes the packages matched by the go-list patterns, resolved
// from dir. It returns the surviving findings: analyzer diagnostics not
// suppressed inline, plus meta-findings for undocumented suppressions,
// stale ignore comments, and stale allowlist entries. A clean tree
// returns an empty slice.
func (d *Driver) Run(dir string, patterns ...string) ([]Diagnostic, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	var allow []*AllowEntry
	if d.Allowlist != "" {
		allow, err = LoadAllowlist(d.Allowlist)
		if err != nil {
			return nil, err
		}
	}
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, c := range d.Checks {
			if !scopeMatches(c.Packages, pkg.ImportPath) {
				continue
			}
			ds, err := Run(c.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		ignores := ParseIgnores(pkg.Fset, pkg.Syntax)
		kept, suppressed := Suppress(diags, ignores)
		findings = append(findings, kept...)
		for _, s := range suppressed {
			rel := relTo(root, s.Pos.Filename)
			if !allowCovers(allow, s.Analyzer, rel) {
				s.Message = fmt.Sprintf("suppression of %q has no %s entry for %s %s",
					s.Message, allowName(d.Allowlist), s.Analyzer, rel)
				findings = append(findings, s)
			}
		}
		for _, ig := range ignores {
			if ig.used {
				continue
			}
			findings = append(findings, Diagnostic{
				Analyzer: ig.Analyzer,
				Pos:      ig.Pos,
				Message:  "stale plfslint:ignore comment: no matching finding on this or the next line",
			})
		}
	}
	for _, e := range allow {
		if e.used {
			continue
		}
		findings = append(findings, Diagnostic{
			Analyzer: e.Analyzer,
			Pos:      Position(d.Allowlist, e.Line),
			Message:  fmt.Sprintf("stale allowlist entry: no suppressed %s finding in %s", e.Analyzer, e.File),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	if d.Out != nil {
		for _, f := range findings {
			fmt.Fprintf(d.Out, "%s:%d:%d: %s (%s)\n",
				relTo(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
		}
	}
	return findings, nil
}

// Position builds a file:line position for non-AST findings (allowlist
// entries).
func Position(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}

// scopeMatches reports whether path falls inside any of the scopes
// (empty scopes = everything).
func scopeMatches(scopes []string, path string) bool {
	if len(scopes) == 0 {
		return true
	}
	for _, s := range scopes {
		if sub, ok := strings.CutSuffix(s, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
		} else if path == s {
			return true
		}
	}
	return false
}

// relTo renders an absolute filename module-relative with forward
// slashes (the form the allowlist uses).
func relTo(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

func allowName(path string) string {
	if path == "" {
		return "allowlist"
	}
	return filepath.Base(path)
}
