package lockorder_test

import (
	"testing"

	"ldplfs/internal/analysis/analysistest"
	"ldplfs/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "a")
}
