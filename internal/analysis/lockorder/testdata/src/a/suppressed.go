package a

// A justified inversion (e.g. a shutdown path that owns every lock
// exclusively) is silenced with an inline ignore; the driver
// additionally demands an allowlist entry.
func suppressedInversion(p *FS, f *File) {
	f.mu.Lock()
	//plfslint:ignore lockorder fixture pins that a justified ignore suppresses the inversion finding
	p.hmu.RLock()
	p.hmu.RUnlock()
	f.mu.Unlock()
}
