// Fixture for the lockorder analyzer. The structs mirror the data
// path's lock owners: FS.hmu (handle registry, rank 0), File.mu
// (handle, rank 1), writer.mu (per-pid shard, rank 2).
package a

import "sync"

type FS struct {
	hmu sync.RWMutex
}

type File struct {
	mu sync.RWMutex
}

type writer struct {
	mu sync.Mutex
}

// Correct order: registry, then handle, then writer shard.
func inOrder(p *FS, f *File, w *writer) {
	p.hmu.RLock()
	f.mu.Lock()
	w.mu.Lock()
	w.mu.Unlock()
	f.mu.Unlock()
	p.hmu.RUnlock()
}

// Regression: the PR 2 deadlock shape. Resolving a handle back through
// the registry while holding the handle's own lock inverts rank 0 and
// rank 1; with a concurrent container truncate quiescing handles in
// seq order the two block on each other forever.
func registryUnderHandle(p *FS, f *File) {
	f.mu.Lock()
	p.hmu.RLock() // want `acquires FS\.hmu \(rank 0\) while holding File\.mu \(rank 1\)`
	p.hmu.RUnlock()
	f.mu.Unlock()
}

func writerBeforeHandle(f *File, w *writer) {
	w.mu.Lock()
	f.mu.Lock() // want `acquires File\.mu \(rank 1\) while holding writer\.mu \(rank 2\)`
	f.mu.Unlock()
	w.mu.Unlock()
}

// A deferred unlock pins the rank held to function end, so a later
// lower-rank acquisition is still an inversion.
func deferredHold(p *FS, f *File) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p.hmu.RLock() // want `acquires FS\.hmu \(rank 0\) while holding File\.mu \(rank 1\)`
	p.hmu.RUnlock()
}

// An explicit unlock releases the rank: re-entering the registry after
// dropping the handle lock is the documented retry shape.
func unlockThenRegistry(p *FS, f *File) {
	f.mu.Lock()
	f.mu.Unlock()
	p.hmu.RLock()
	p.hmu.RUnlock()
}

// Same-rank reacquisition is allowed: distinct handles of one
// container are ordered dynamically by File.seq, beyond static reach.
func twoHandles(f1, f2 *File) {
	f1.mu.Lock()
	f2.mu.Lock()
	f2.mu.Unlock()
	f1.mu.Unlock()
}

// Closures inherit the enclosing held-set: the inversion does not
// escape by hiding in a func literal.
func closureHeld(p *FS, f *File) {
	f.mu.Lock()
	defer f.mu.Unlock()
	probe := func() {
		p.hmu.RLock() // want `acquires FS\.hmu \(rank 0\) while holding File\.mu \(rank 1\)`
		p.hmu.RUnlock()
	}
	probe()
}

type cache struct {
	mu sync.Mutex
}

// Locks outside the ranking are ignored.
func unranked(c *cache, f *File) {
	f.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	f.mu.Unlock()
}
