// Package lockorder checks mutex acquisitions against a declared
// ranking within one function.
//
// The PR 2 truncate redesign fixed a deadlock class by declaring a
// deterministic acquisition order across the write path's three locks:
// the FS handle registry (FS.hmu), then the handle lock (File.mu,
// shared or exclusive), then the per-pid writer shard (writer.mu).
// Container-level truncation quiesces every handle in File.seq order
// under that ranking. The invariant lives only in comments; this
// analyzer makes it mechanical: acquiring a ranked lock while a
// strictly higher-ranked lock is held (in the same function, including
// closures, which inherit the enclosing held-set) is a finding.
//
// The check is a linear over-approximation: statements are scanned in
// source order, Lock/RLock marks a rank held, Unlock/RUnlock releases
// it, and a deferred unlock pins the rank held to function end. Locks
// not named in the ranking are ignored, and re-acquiring an
// already-held rank is allowed — distinct instances of one rank (e.g.
// every handle of a container) are ordered dynamically by File.seq,
// which is beyond static reach.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"ldplfs/internal/analysis"
)

// DefaultRanking is the declared data-path order, outermost first:
// "Type.field" at index i must be acquired before any entry at index
// j > i.
var DefaultRanking = []string{"FS.hmu", "File.mu", "writer.mu"}

// Analyzer is the production instance over DefaultRanking.
var Analyzer = New(DefaultRanking)

var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// New builds an analyzer enforcing the given ranking (outermost lock
// first).
func New(ranking []string) *analysis.Analyzer {
	rank := make(map[string]int, len(ranking))
	for i, k := range ranking {
		rank[k] = i
	}
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc: "checks mutex acquisition order against the declared ranking " +
			strings.Join(ranking, " -> ") + " within one function",
		Run: func(pass *analysis.Pass) error { return run(pass, ranking, rank) },
	}
}

func run(pass *analysis.Pass, ranking []string, rank map[string]int) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, ranking, rank)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, ranking []string, rank map[string]int) {
	held := make([]int, len(ranking)) // acquisition count per rank
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			key, method, ok := lockCall(pass, n)
			if !ok {
				return true
			}
			r, ranked := rank[key]
			if !ranked {
				return true
			}
			switch {
			case lockMethods[method] && !deferred[n]:
				for h := r + 1; h < len(held); h++ {
					if held[h] > 0 {
						pass.Reportf(n.Pos(),
							"acquires %s (rank %d) while holding %s (rank %d); declared order is %s",
							key, r, ranking[h], h, strings.Join(ranking, " -> "))
					}
				}
				held[r]++
			case unlockMethods[method] && !deferred[n]:
				if held[r] > 0 {
					held[r]--
				}
			}
		}
		return true
	})
}

// lockCall decodes a call of the form <expr>.<Lock|RLock|Unlock|RUnlock>()
// where <expr> is a struct field selection, returning the ranking key
// "OwnerType.field" and the method name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	if !lockMethods[method] && !unlockMethods[method] {
		return "", "", false
	}
	// The receiver must itself be a field selection: f.mu, p.hmu, ...
	recv, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, found := pass.TypesInfo.Selections[recv]
	if !found || selection.Kind() != types.FieldVal {
		return "", "", false
	}
	owner := selection.Recv()
	if p, isPtr := owner.Underlying().(*types.Pointer); isPtr {
		owner = p.Elem()
	}
	named, isNamed := owner.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	return fmt.Sprintf("%s.%s", named.Obj().Name(), recv.Sel.Name), method, true
}
