// Package clockinject forbids direct wall-clock access in packages
// whose tests depend on deterministic, injectable time.
//
// The PR 5 autotune controller (internal/plfs/tune) and the PR 6 QoS
// stage both take a tune.Clock so tests drive throughput windows and
// token-bucket refills with a ManualClock — the convergence and
// isolation tests are deterministic only because no code path consults
// the real clock behind the injected one's back. A stray time.Now() or
// time.Sleep() reintroduces wall time silently: tests stay green on a
// fast machine and flake under load.
//
// Every call to a forbidden time-package function (Now, Since, Until,
// Sleep, After, Tick, NewTimer, NewTicker, AfterFunc) is flagged. The
// two legitimate escape hatches — the WallClock constructor's own
// time.Now and the QoS stage's debt-paying sleep — carry inline
// plfslint:ignore comments backed by the checked-in allowlist.
package clockinject

import (
	"go/ast"
	"go/types"

	"ldplfs/internal/analysis"
)

// Forbidden lists the time-package functions that reintroduce wall
// time.
var Forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer is the production instance.
var Analyzer = &analysis.Analyzer{
	Name: "clockinject",
	Doc: "forbids time.Now/time.Since/time.Sleep (and friends) in packages with an " +
		"injectable-clock contract; wall time must flow through tune.Clock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !Forbidden[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s bypasses the injected tune.Clock and breaks the deterministic-test contract; take the clock from the config", fn.Name())
			return true
		})
	}
	return nil
}
