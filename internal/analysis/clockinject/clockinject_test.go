package clockinject_test

import (
	"testing"

	"ldplfs/internal/analysis/analysistest"
	"ldplfs/internal/analysis/clockinject"
)

func TestClockInject(t *testing.T) {
	analysistest.Run(t, "testdata", clockinject.Analyzer, "a")
}
