package a

import "time"

// The real-clock implementation behind the injectable seam is the one
// legitimate wall-time site; it carries an inline ignore exactly like
// tune.wallClock in production.
type wallClock struct{}

//plfslint:ignore clockinject fixture pins that the real-clock implementation may read wall time
func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Since(t time.Time) time.Duration {
	//plfslint:ignore clockinject fixture pins the since path of the real-clock implementation
	return time.Since(t)
}
