// Fixture for the clockinject analyzer: wall-clock access in a
// package with an injectable-clock contract.
package a

import "time"

// Clock mirrors tune.Clock: the injectable seam every timed decision
// must flow through.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

type controller struct {
	clock Clock
}

// Regression: a stray wall-clock read behind the injected clock's
// back. Convergence tests driven by a ManualClock stay green on a
// fast machine and flake under load.
func (c *controller) window() time.Time {
	return time.Now() // want `time\.Now bypasses the injected tune\.Clock`
}

func (c *controller) pace(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep bypasses the injected tune\.Clock`
}

func (c *controller) age(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since bypasses the injected tune\.Clock`
}

func (c *controller) ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker bypasses the injected tune\.Clock`
}

// --- allowed forms ---------------------------------------------------------

// Reads through the injected clock are the contract, not a violation.
func (c *controller) viaClock(start time.Time) time.Duration {
	_ = c.clock.Now()
	return c.clock.Since(start)
}

// Duration arithmetic and time-package constants don't touch the wall
// clock.
func durations(d time.Duration) time.Duration {
	return d + 50*time.Millisecond
}

// Constructing times from explicit components is deterministic.
func explicit() time.Time {
	return time.Unix(0, 0)
}
