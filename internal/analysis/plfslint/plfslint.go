// Package plfslint wires the six project analyzers into the scoped
// suite that cmd/plfslint and CI run. The scopes pin each invariant to
// the packages where it is a contract rather than a style preference:
//
//   - nilcollector, atomicfield: every package (the bug classes are
//     global),
//   - lockorder: internal/plfs, where the ranked locks live,
//   - errnopreserve: the wire-protocol path (service, its client, the
//     posix layer whose errnos it transports, and the daemon),
//   - clockinject: the autotune controller and the QoS/gateway stage,
//     which promise deterministic tests via injectable clocks,
//   - bufpool: the engine package, whose warm read/write paths carry
//     a zero-alloc budget and pooled-buffer hygiene rules.
package plfslint

import (
	"io"

	"ldplfs/internal/analysis"
	"ldplfs/internal/analysis/atomicfield"
	"ldplfs/internal/analysis/bufpool"
	"ldplfs/internal/analysis/clockinject"
	"ldplfs/internal/analysis/errnopreserve"
	"ldplfs/internal/analysis/lockorder"
	"ldplfs/internal/analysis/nilcollector"
)

// AllowlistName is the checked-in suppression allowlist at the module
// root. Every inline plfslint:ignore must have an entry here; see
// internal/analysis/doc.go.
const AllowlistName = "plfslint.allow"

// Checks returns the production suite with its package scopes.
func Checks() []analysis.Check {
	return []analysis.Check{
		{Analyzer: nilcollector.Analyzer},
		{Analyzer: atomicfield.Analyzer},
		{Analyzer: lockorder.Analyzer, Packages: []string{"ldplfs/internal/plfs"}},
		{Analyzer: errnopreserve.Analyzer, Packages: []string{
			"ldplfs/internal/service/...",
			"ldplfs/internal/posix",
			"ldplfs/cmd/plfsd",
		}},
		{Analyzer: clockinject.Analyzer, Packages: []string{
			"ldplfs/internal/plfs/tune",
			"ldplfs/internal/service",
		}},
		{Analyzer: bufpool.Analyzer, Packages: []string{
			"ldplfs/internal/plfs",
			"ldplfs/internal/mpiio",
		}},
	}
}

// Analyzers returns the six analyzers without scoping (for -list and
// for running everything against a fixture).
func Analyzers() []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, c := range Checks() {
		out = append(out, c.Analyzer)
	}
	return out
}

// NewDriver builds the production driver: the scoped suite plus the
// allowlist at path (pass "" to forbid all suppressions).
func NewDriver(allowlist string, out io.Writer) *analysis.Driver {
	return &analysis.Driver{Checks: Checks(), Allowlist: allowlist, Out: out}
}
