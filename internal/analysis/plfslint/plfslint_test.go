package plfslint_test

import (
	"strings"
	"testing"

	"ldplfs/internal/analysis"
	"ldplfs/internal/analysis/plfslint"
)

// unscopedDriver runs every registered analyzer regardless of import
// path, so the knownbad fixture (which lives outside the production
// scopes) exercises all five.
func unscopedDriver() *analysis.Driver {
	var checks []analysis.Check
	for _, a := range plfslint.Analyzers() {
		checks = append(checks, analysis.Check{Analyzer: a})
	}
	return &analysis.Driver{Checks: checks}
}

func TestKnownBadTripsEveryAnalyzer(t *testing.T) {
	findings, err := unscopedDriver().Run(".", "./testdata/src/knownbad")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	byAnalyzer := make(map[string]int)
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	for _, a := range plfslint.Analyzers() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s reported nothing against the knownbad fixture", a.Name)
		}
	}
	// The historical-bug shapes must be called out in the messages.
	assertFinding(t, findings, "possibly-nil *ldplfs/internal/iostats.Plane stored into ldplfs/internal/iostats.Collector")
	assertFinding(t, findings, "acquires FS.hmu (rank 0) while holding File.mu (rank 1)")
	assertFinding(t, findings, "error wrapped with %v drops its errno chain")
	assertFinding(t, findings, "time.Now bypasses the injected tune.Clock")
	assertFinding(t, findings, "plain access of gen")
	assertFinding(t, findings, "sync.Pool Get without a matching Put")
	assertFinding(t, findings, "make([]byte, ...) in engine hot-path scatterGather")
	// Suppression hygiene is findings too.
	assertFinding(t, findings, "stale plfslint:ignore comment")
	assertFinding(t, findings, "has no allowlist entry for nilcollector")
}

func assertFinding(t *testing.T, findings []analysis.Diagnostic, substr string) {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f.Message, substr) {
			return
		}
	}
	t.Errorf("no finding containing %q", substr)
}

// TestScopes pins the scope table: each analyzer runs where its
// invariant lives, and nowhere it would only produce noise.
func TestScopes(t *testing.T) {
	scopeOf := make(map[string][]string)
	for _, c := range plfslint.Checks() {
		scopeOf[c.Analyzer.Name] = c.Packages
	}
	for _, global := range []string{"nilcollector", "atomicfield"} {
		if got, ok := scopeOf[global]; !ok || len(got) != 0 {
			t.Errorf("%s should be unscoped (all packages), got %v", global, got)
		}
	}
	if got := scopeOf["lockorder"]; len(got) != 1 || got[0] != "ldplfs/internal/plfs" {
		t.Errorf("lockorder scope = %v, want exactly ldplfs/internal/plfs", got)
	}
	for name, needle := range map[string]string{
		"errnopreserve": "ldplfs/internal/service/...",
		"clockinject":   "ldplfs/internal/plfs/tune",
		"bufpool":       "ldplfs/internal/plfs",
	} {
		found := false
		for _, s := range scopeOf[name] {
			if s == needle {
				found = true
			}
		}
		if !found {
			t.Errorf("%s scope %v does not include %s", name, scopeOf[name], needle)
		}
	}
}
