// Package knownbad violates every invariant plfslint enforces, one
// per analyzer, plus both suppression meta-findings. The smoke tests
// run the multichecker over it and demand that each analyzer fires —
// if a future refactor quietly unwires one, the test fails.
package knownbad

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ldplfs/internal/iostats"
)

// Lock owners named like the data path's so the ranking applies.

type FS struct {
	hmu sync.RWMutex
}

type File struct {
	mu sync.RWMutex
}

// nilcollector: the PR 6 typed-nil shape.
func typedNil(p *iostats.Plane) iostats.Collector {
	return p
}

// lockorder: the PR 2 inversion shape.
func inverted(p *FS, f *File) {
	f.mu.Lock()
	p.hmu.RLock()
	p.hmu.RUnlock()
	f.mu.Unlock()
}

// errnopreserve: %v severs the errno chain.
func wrap(err error) error {
	return fmt.Errorf("open: %v", err)
}

// clockinject: wall time behind the injected clock's back.
func now() time.Time {
	return time.Now()
}

// bufpool: the PR 9 hot-path shapes — an engine hot function that
// leaks its pooled entry and allocates a payload buffer per call.
var scratch = sync.Pool{New: func() any {
	b := make([]byte, 64)
	return &b
}}

func scatterGather(n int) []byte {
	b := scratch.Get().(*[]byte)
	_ = b
	return make([]byte, n)
}

// atomicfield: mixed atomic/plain access of one variable.
var gen int64

func bump() {
	atomic.AddInt64(&gen, 1)
}

func read() int64 {
	return gen
}

// A stale ignore: no finding on this or the next line, so the driver
// reports the comment itself.
//
//plfslint:ignore nilcollector nothing to suppress here; pins the stale-ignore meta-finding
var placeholder = 0

// An undocumented suppression: the ignore silences the diagnostic but
// has no allowlist entry, so the driver surfaces it as a finding.
func undocumented(p *iostats.Plane) {
	//plfslint:ignore nilcollector undocumented on purpose; pins the allowlist meta-finding
	var c iostats.Collector = p
	_ = c
}
