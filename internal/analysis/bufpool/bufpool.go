// Package bufpool enforces the PR 9 hot-path memory discipline in the
// engine package: pooled buffers must go back to their pool, and the
// scatter-gather/vectored-write hot functions must not allocate byte
// slices per call.
//
// Two checks:
//
//  1. Unpaired Get: a function that calls (*sync.Pool).Get must also
//     return the entry — either a (*sync.Pool).Put in the same
//     function (usually deferred), or a call (usually deferred) to a
//     package-local helper that itself calls Put (the plan.release
//     idiom). A Get with neither leaks pool entries: the pool still
//     works, but every "pooled" acquisition quietly degrades to a heap
//     allocation and the zero-alloc contract rots without any test
//     noticing.
//
//  2. Hot-path make: a `make([]byte, ...)` inside one of the engine's
//     per-operation hot functions (HotFuncs) reintroduces a per-call
//     allocation on exactly the path the warm-read/vectored-write
//     alloc budgets protect. Cold paths may allocate freely; the hot
//     set is a named list, not a guess.
//
// The pairing check is name-based for helpers (a called function with
// the right name that contains a Put satisfies it) — a deliberate
// approximation that matches this codebase's release() idiom without
// whole-program analysis.
package bufpool

import (
	"go/ast"
	"go/types"

	"ldplfs/internal/analysis"
)

// HotFuncs names the engine functions on the warm read/write path
// whose per-call byte-slice allocations the alloc budgets forbid.
// Additions to the hot path belong here too.
var HotFuncs = map[string]bool{
	"scatterGather":  true,
	"scatterGatherV": true,
	"planBatches":    true,
	"readBatch":      true,
	"failBatch":      true,
	"writeV":         true,
	"writeData":      true,
	"pwriteAll":      true,
	// mpiio collective shuffle plane: the per-round aggregator loop.
	"route":         true,
	"stageWrite":    true,
	"stageReadRuns": true,
	"deliver":       true,
	"sortRefs":      true,
	"flushArena":    true,
	"fetchArena":    true,
}

// Analyzer is the production instance.
var Analyzer = &analysis.Analyzer{
	Name: "bufpool",
	Doc: "enforces pooled-buffer hygiene: every sync.Pool Get is paired with a Put " +
		"(directly or via a releasing helper), and engine hot-path functions never " +
		"make([]byte, ...) per call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: which package functions call (*sync.Pool).Put directly?
	// Their names satisfy the pairing check for callers (release idiom).
	putters := make(map[string]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if containsPoolCall(pass, fd.Body, "Put") {
				putters[fd.Name.Name] = true
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, putters)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, putters map[string]bool) {
	var firstGet ast.Node
	paired := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPoolCall(pass, call, "Get"):
			if firstGet == nil {
				firstGet = call
			}
		case isPoolCall(pass, call, "Put"):
			paired = true
		default:
			// A call to a package-local releasing helper counts as the
			// pairing — plan.release() / handle.Release() style.
			if name := calleeName(call); putters[name] {
				paired = true
			}
		}
		if HotFuncs[fd.Name.Name] && isMakeByteSlice(pass, call) {
			pass.Reportf(call.Pos(),
				"make([]byte, ...) in engine hot-path %s allocates per call; draw from the shared buffer pool", fd.Name.Name)
		}
		return true
	})
	if firstGet != nil && !paired {
		pass.Reportf(firstGet.Pos(),
			"sync.Pool Get without a matching Put in %s; defer Put (or a releasing helper) so pooled buffers are returned", fd.Name.Name)
	}
}

// isPoolCall reports whether call is (*sync.Pool).<method>.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// containsPoolCall reports whether body contains a (*sync.Pool).<method>
// call.
func containsPoolCall(pass *analysis.Pass, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolCall(pass, call, method) {
			found = true
		}
		return !found
	})
	return found
}

// calleeName returns the bare name of the called function or method
// ("release" for plan.release(), "helper" for helper()).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isMakeByteSlice reports whether call is make([]byte, ...). Slices of
// slices ([][]byte) are headers only — they are not flagged.
func isMakeByteSlice(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := pass.TypesInfo.Types[call.Args[0]].Type.(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
