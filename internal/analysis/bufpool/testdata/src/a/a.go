// Fixture for the bufpool analyzer: pooled-buffer hygiene and
// hot-path allocation discipline.
package a

import "sync"

var pool = sync.Pool{New: func() any {
	b := make([]byte, 1024)
	return &b
}}

// Regression: the Get leaks — the entry never returns to the pool, so
// every call quietly degrades to a heap allocation.
func leak(n int) byte {
	b := pool.Get().(*[]byte) // want `sync\.Pool Get without a matching Put in leak`
	return (*b)[n]
}

// Deferred direct Put is the canonical pairing.
func pairedDefer(n int) byte {
	b := pool.Get().(*[]byte)
	defer pool.Put(b)
	return (*b)[n]
}

// Straight-line Put pairs too.
func pairedInline(n int) byte {
	b := pool.Get().(*[]byte)
	v := (*b)[n]
	pool.Put(b)
	return v
}

// plan mirrors the engine's pooled scratch structs.
type plan struct {
	bufs [][]byte
}

var planPool = sync.Pool{New: func() any { return new(plan) }}

// release is a releasing helper: it contains the Put, so callers that
// defer it are paired.
func (p *plan) release() {
	for i := range p.bufs {
		p.bufs[i] = nil
	}
	planPool.Put(p)
}

// Pairing through the deferred helper — the engine's plan idiom.
func pairedViaHelper() int {
	p := planPool.Get().(*plan)
	defer p.release()
	return len(p.bufs)
}

// Hot-path function by name: a per-call byte-slice allocation on the
// warm read path defeats the alloc budget.
func scatterGather(n int) []byte {
	return make([]byte, n) // want `make\(\[\]byte, \.\.\.\) in engine hot-path scatterGather`
}

// Both violations at once: the vectored-write hot path allocating and
// leaking.
func writeV(n int) []byte {
	b := pool.Get().(*[]byte) // want `sync\.Pool Get without a matching Put in writeV`
	_ = b
	return make([]byte, n) // want `make\(\[\]byte, \.\.\.\) in engine hot-path writeV`
}

// Cold paths may allocate freely.
func coldSetup(n int) []byte {
	return make([]byte, n)
}

// Slice-of-slices headers are not payload allocations.
func planBatches(n int) [][]byte {
	return make([][]byte, n)
}
