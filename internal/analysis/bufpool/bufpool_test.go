package bufpool_test

import (
	"testing"

	"ldplfs/internal/analysis/analysistest"
	"ldplfs/internal/analysis/bufpool"
)

func TestBufPool(t *testing.T) {
	analysistest.Run(t, "testdata", bufpool.Analyzer, "a")
}
