// The invariant catalogue.
//
// Each plfslint analyzer mechanizes one rule that earlier PRs
// established in prose (comments, commit messages, review threads) and
// that at least one real bug has violated since. The analyzer is the
// durable form of the rule: the comment can go stale, the finding
// cannot.
//
// # nilcollector — typed-nil pointers must not become interfaces
//
// Invariant: a concrete pointer that may be nil is never stored into
// iostats.Collector or posix.FS. A nil *iostats.Plane wrapped in a
// Collector is != nil, so every `if stats != nil` guard downstream
// passes and the first method call segfaults.
//
// History: the PR 6 gateway wired TelemetryOptions.Stats from a
// *iostats.Plane that was only allocated when telemetry was enabled;
// with telemetry off, the daemon crashed on first I/O. This PR's
// initial run found the same shape again in service.go (an unguarded
// `fsCfg.Telemetry.Stats = g.plane`), now fixed with a nil guard.
//
// Allowed forms the checker recognizes: untyped nil, constructor
// calls, &composite, a dominating `x != nil` guard, an earlier
// `if x == nil { x = ... }` normalization, and locals provably
// assigned non-nil in the enclosing function.
//
// # lockorder — the data path's three locks have a declared ranking
//
// Invariant: FS.hmu (handle registry) before File.mu (handle) before
// writer.mu (per-pid writer shard), within any one function including
// its closures. Scope: ldplfs/internal/plfs only.
//
// History: the PR 2 truncate redesign fixed a deadlock between
// container-level truncation (quiescing every handle in File.seq
// order) and handle operations that re-entered the registry while
// holding their own lock. Distinct instances of one rank are ordered
// dynamically by File.seq, which a static check cannot see, so
// same-rank reacquisition is allowed.
//
// # errnopreserve — errors that cross the wire keep their errno chain
//
// Invariant: in ldplfs/internal/service (and client), internal/posix
// and cmd/plfsd, errors are wrapped with %w, never %v/%s or
// err.Error(). The PR 6 wire protocol answers every request with an
// i32 status derived by service.ErrnoOf via errors.As; a severed chain
// degrades ENOENT to EIO and remote tools take wrong fallback paths.
//
// History: this PR's initial run found cmd/plfsd formatting a tenant
// spec parse error with %v (now %w).
//
// # clockinject — no wall-clock reads behind the injected clock
//
// Invariant: ldplfs/internal/plfs/tune and ldplfs/internal/service
// never call time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker/
// AfterFunc directly; time flows through tune.Clock so ManualClock
// tests stay deterministic.
//
// History: the PR 5 autotune controller and the PR 6 QoS token bucket
// are both tested by driving a ManualClock; a stray wall-clock call
// flakes those tests only under load, the worst kind of failure. Two
// sites legitimately touch wall time and carry allowlisted ignores:
// tune.wallClock.Now (the real-clock implementation itself) and
// qos.sleep (paying token-bucket debt in real time).
//
// # atomicfield — no mixed atomic/plain access to one variable
//
// Invariant: if any site in a package passes &x to a sync/atomic
// Load/Store/Add/Swap/CompareAndSwap, every other access to x is
// atomic too. One plain read of an atomically-written knob compiles
// fine, races, and only occasionally trips the race detector because
// the window is a single load.
//
// History: the PR 5 runtime knob overrides (SetReadWorkers and
// friends) made "written atomically, read on the data path" a standing
// pattern; the engines since migrated to atomic.Int32 wrapper types,
// which make mixed access inexpressible — this analyzer covers the
// function-style atomics that remain. Mutex-guarded mixed use (atomic
// write, read under the lock all writers hold) is the legitimate
// exception; suppress it inline.
//
// # bufpool — pooled buffers return to their pool; hot paths don't allocate
//
// Invariant: in ldplfs/internal/plfs, every (*sync.Pool).Get is paired
// in the same function with a Put — deferred directly or through a
// releasing helper that contains the Put (the plan.release idiom) —
// and the engine's hot functions (scatterGather, planBatches,
// readBatch, failBatch, writeV, writeData, pwriteAll) never
// make([]byte, ...) per call.
//
// History: the PR 9 zero-alloc rework moved the warm read/write paths
// onto pooled plans and buffers, asserted by allocs-per-op budgets in
// CI. Those budgets only watch the benchmarked paths; a leaked Get or
// a fresh buffer on an unbenchmarked branch silently degrades pooling
// back to per-call heap churn. The analyzer is the rule's durable
// form; the alloc budget is its spot check.
//
// # Running and suppressing
//
// Run the multichecker exactly as CI does:
//
//	go run ./cmd/plfslint ./...
//
// Exit 0 is clean; 1 means findings; 2 a usage or load failure.
// To suppress a finding, put an inline comment on the flagged line or
// the line directly above:
//
//	//plfslint:ignore <analyzer> <reason>
//
// and add a covering line to plfslint.allow at the module root:
//
//	<analyzer> <module-relative-file> <justification>
//
// The driver reports an ignore without an allowlist entry, an ignore
// that no longer suppresses anything, and an allowlist entry with no
// matching ignore as findings — the suppression set stays exact.

package analysis
