package a

import "ldplfs/internal/iostats"

// An inline ignore silences the finding (the driver additionally
// demands an allowlist entry; analysistest pins only the suppression).
func suppressed(plane *iostats.Plane) {
	//plfslint:ignore nilcollector fixture pins that a justified ignore suppresses the finding
	use(plane)
}
