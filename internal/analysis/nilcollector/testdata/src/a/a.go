// Fixture for the nilcollector analyzer: stores of possibly-nil
// pointers into the guarded interfaces iostats.Collector and posix.FS.
package a

import (
	"ldplfs/internal/iostats"
	"ldplfs/internal/posix"
)

type cfg struct {
	Stats iostats.Collector
}

func use(c iostats.Collector) { _ = c }

// Regression: the PR 6 bug. A *iostats.Plane of unknown provenance
// wrapped into a Collector is != nil even when the pointer is nil, so
// the telemetry-off path passed its guards and segfaulted.
func typedNilPlane(plane *iostats.Plane) {
	var c iostats.Collector
	c = plane // want `possibly-nil \*ldplfs/internal/iostats\.Plane stored into ldplfs/internal/iostats\.Collector`
	_ = c
}

func declAssign(plane *iostats.Plane) {
	var c iostats.Collector = plane // want `possibly-nil \*ldplfs/internal/iostats\.Plane`
	_ = c
}

func callArg(plane *iostats.Plane) {
	use(plane) // want `possibly-nil \*ldplfs/internal/iostats\.Plane`
}

func returned(plane *iostats.Plane) iostats.Collector {
	return plane // want `possibly-nil \*ldplfs/internal/iostats\.Plane`
}

func inLiteral(plane *iostats.Plane) cfg {
	return cfg{Stats: plane} // want `possibly-nil \*ldplfs/internal/iostats\.Plane`
}

func explicitConversion(plane *iostats.Plane) {
	use(iostats.Collector(plane)) // want `possibly-nil \*ldplfs/internal/iostats\.Plane`
}

func memFS(m *posix.MemFS) posix.FS {
	return m // want `possibly-nil \*ldplfs/internal/posix\.MemFS stored into ldplfs/internal/posix\.FS`
}

// --- allowed forms ---------------------------------------------------------

func honestNil() iostats.Collector {
	return nil // a nil interface is what != nil checks are for
}

func constructed() iostats.Collector {
	return iostats.NewPlane()
}

func addressOf() posix.FS {
	return &posix.MemFS{}
}

func guarded(plane *iostats.Plane) {
	if plane != nil {
		use(plane)
	}
}

func guardedElse(plane *iostats.Plane) {
	if plane == nil {
		use(iostats.NewPlane())
	} else {
		use(plane)
	}
}

func guardedConjunct(plane *iostats.Plane, on bool) {
	if on && plane != nil {
		use(plane)
	}
}

func normalized(plane *iostats.Plane) {
	if plane == nil {
		plane = iostats.NewPlane()
	}
	use(plane)
}

func provablyInitialized() {
	p := iostats.NewPlane()
	use(p)
}

func initializedInOuter() func() {
	p := iostats.NewPlane()
	return func() {
		use(p) // assigned from a constructor in the enclosing function
	}
}

func interfaceToInterface(c iostats.Collector) iostats.Collector {
	return c // interface-to-interface carries no new typed-nil risk
}
