// Package nilcollector flags stores of possibly-nil concrete pointers
// into the repository's guarded interface types (iostats.Collector,
// posix.FS).
//
// The bug class is the one PR 6 had to hot-fix: a typed-nil
// *iostats.Plane wrapped into a Collector interface value is != nil, so
// every downstream `if collector != nil` guard passes and the first
// method call dereferences nil — the telemetry-off path segfaulted. The
// compiler cannot catch this; the conversion site can.
//
// A pointer-to-interface conversion is accepted only when the source is
// provably non-nil at the site:
//
//   - a nil literal (an honest nil interface),
//   - a call expression (constructors own their nilness),
//   - an address expression (&T{...} or &x),
//   - an expression lexically guarded by `if x != nil` (or the else arm
//     of `if x == nil`),
//   - an expression normalized earlier in the same function by
//     `if x == nil { x = <non-nil> }`,
//   - a local variable whose every assignment in the function is one of
//     the allowed forms above.
//
// Anything else — a parameter, a struct field, a variable of unknown
// provenance — must be guarded or suppressed.
package nilcollector

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"ldplfs/internal/analysis"
)

// DefaultGuarded names the interface types the analyzer protects, as
// "import/path.TypeName".
var DefaultGuarded = []string{
	"ldplfs/internal/iostats.Collector",
	"ldplfs/internal/posix.FS",
}

// Analyzer is the production instance over DefaultGuarded.
var Analyzer = New(DefaultGuarded...)

// New builds an analyzer guarding the given interface types.
func New(guarded ...string) *analysis.Analyzer {
	set := make(map[string]bool, len(guarded))
	for _, g := range guarded {
		set[g] = true
	}
	return &analysis.Analyzer{
		Name: "nilcollector",
		Doc: "flags possibly-nil concrete pointers stored into guarded interface types " +
			"(typed-nil interface values defeat != nil checks)",
		Run: func(pass *analysis.Pass) error { return run(pass, set) },
	}
}

func run(pass *analysis.Pass, guarded map[string]bool) error {
	c := &checker{pass: pass, guarded: guarded}
	for _, f := range pass.Files {
		c.walk(f)
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	guarded map[string]bool
	stack   []ast.Node // enclosing nodes, innermost last
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			c.stack = c.stack[:len(c.stack)-1]
			return false
		}
		c.stack = append(c.stack, node)
		switch n := node.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ValueSpec:
			c.valueSpec(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.ReturnStmt:
			c.ret(n)
		case *ast.CompositeLit:
			c.composite(n)
		}
		return true
	})
}

// guardedIface reports whether t is one of the protected interfaces.
func (c *checker) guardedIface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || !types.IsInterface(t) {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return c.guarded[obj.Pkg().Path()+"."+obj.Name()]
}

// nillableConcrete reports whether t is a concrete type whose zero
// value is nil and which therefore produces a typed-nil interface.
func nillableConcrete(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// convert checks one src-expression-into-dst-type conversion.
func (c *checker) convert(dst types.Type, src ast.Expr) {
	if dst == nil || !c.guardedIface(dst) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return // untyped nil: an honest nil interface
	}
	if !nillableConcrete(tv.Type) {
		return
	}
	if c.allowed(src) {
		return
	}
	name := exprString(src)
	if name == "" {
		name = "the value"
	}
	c.pass.Reportf(src.Pos(),
		"possibly-nil %s stored into %s: a typed-nil pointer makes the interface != nil; guard with `if %s != nil` or store a freshly constructed value",
		types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(dst, types.RelativeTo(c.pass.Pkg)),
		name)
}

// allowed reports whether src is provably non-nil at its use.
func (c *checker) allowed(src ast.Expr) bool {
	switch e := ast.Unparen(src).(type) {
	case *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return true
		}
	case *ast.CompositeLit:
		return true // map/func literals are non-nil
	}
	name := exprString(src)
	if name == "" {
		return false
	}
	if c.nilGuarded(name, src.Pos()) {
		return true
	}
	if c.nilNormalized(name, src.Pos()) {
		return true
	}
	return c.provablyInitialized(src)
}

// nilGuarded reports whether the use at pos sits inside the non-nil arm
// of an enclosing `if name != nil` / `if name == nil ... else`.
func (c *checker) nilGuarded(name string, pos token.Pos) bool {
	for i := len(c.stack) - 1; i >= 0; i-- {
		ifs, ok := c.stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := ifs.Body != nil && ifs.Body.Pos() <= pos && pos < ifs.Body.End()
		inElse := ifs.Else != nil && ifs.Else.Pos() <= pos && pos < ifs.Else.End()
		if inBody && condChecksNil(ifs.Cond, name, token.NEQ) {
			return true
		}
		if inElse && condChecksNil(ifs.Cond, name, token.EQL) {
			return true
		}
	}
	return false
}

// condChecksNil reports whether cond contains `name <op> nil` as a
// conjunct (op is != or ==).
func condChecksNil(cond ast.Expr, name string, op token.Token) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LAND || bin.Op == token.LOR {
		return condChecksNil(bin.X, name, op) || condChecksNil(bin.Y, name, op)
	}
	if bin.Op != op {
		return false
	}
	x, y := exprString(bin.X), exprString(bin.Y)
	return (x == name && y == "nil") || (y == name && x == "nil")
}

// nilNormalized reports whether an earlier statement of the enclosing
// function reads `if name == nil { name = <allowed> }` — the
// normalize-then-use idiom.
func (c *checker) nilNormalized(name string, pos token.Pos) bool {
	body := c.outermostFuncBody()
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Body == nil || !condChecksNil(ifs.Cond, name, token.EQL) {
			return true
		}
		for _, st := range ifs.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if exprString(as.Lhs[0]) == name && nonNilExpr(as.Rhs[0]) {
				found = true
			}
		}
		return true
	})
	return found
}

// provablyInitialized reports whether src is a local variable whose
// every assignment in the enclosing function is a non-nil form.
func (c *checker) provablyInitialized(src ast.Expr) bool {
	id, ok := ast.Unparen(src).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	body := c.outermostFuncBody()
	if body == nil {
		return false
	}
	assigns := 0
	allNonNil := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				// Tuple assignment from a call: results of calls are
				// trusted, same as direct call sources.
				for _, l := range st.Lhs {
					if c.identIs(l, obj) {
						assigns++
					}
				}
				return true
			}
			for i, l := range st.Lhs {
				if c.identIs(l, obj) {
					assigns++
					if !nonNilExpr(st.Rhs[i]) {
						allNonNil = false
					}
				}
			}
		case *ast.ValueSpec:
			for i, nm := range st.Names {
				if c.pass.TypesInfo.Defs[nm] != obj {
					continue
				}
				assigns++
				if i >= len(st.Values) || !nonNilExpr(st.Values[i]) {
					allNonNil = false
				}
			}
		}
		return true
	})
	return assigns > 0 && allNonNil
}

// identIs reports whether e is an identifier bound to obj.
func (c *checker) identIs(e ast.Expr, obj *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return c.pass.TypesInfo.Defs[id] == obj || c.pass.TypesInfo.Uses[id] == obj
}

// nonNilExpr reports whether e is syntactically non-nil: a call, an
// address expression, or a composite literal.
func nonNilExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND
	}
	return false
}

// outermostFuncBody returns the outermost enclosing function body —
// closures see (and may be fed by) their enclosing function's
// assignments, so provenance scans cover the whole lexical context.
func (c *checker) outermostFuncBody() *ast.BlockStmt {
	for i := 0; i < len(c.stack); i++ {
		switch f := c.stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// enclosingResults returns the innermost enclosing function's result
// tuple.
func (c *checker) enclosingResults() *types.Tuple {
	for i := len(c.stack) - 1; i >= 0; i-- {
		switch f := c.stack[i].(type) {
		case *ast.FuncDecl:
			if obj, ok := c.pass.TypesInfo.Defs[f.Name].(*types.Func); ok {
				return obj.Type().(*types.Signature).Results()
			}
		case *ast.FuncLit:
			if sig, ok := c.pass.TypesInfo.Types[f].Type.(*types.Signature); ok {
				return sig.Results()
			}
		}
	}
	return nil
}

func (c *checker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		var dst types.Type
		if n.Tok == token.DEFINE {
			continue // := infers the concrete type, no conversion
		}
		dst = c.pass.TypesInfo.TypeOf(lhs)
		c.convert(dst, n.Rhs[i])
	}
}

func (c *checker) valueSpec(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	dst := c.pass.TypesInfo.TypeOf(n.Type)
	for _, v := range n.Values {
		c.convert(dst, v)
	}
}

func (c *checker) call(n *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[n.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion Collector(x).
		if len(n.Args) == 1 {
			c.convert(tv.Type, n.Args[0])
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range n.Args {
		var dst types.Type
		switch {
		case i < np-1 || (i == np-1 && !sig.Variadic()):
			dst = sig.Params().At(i).Type()
		case sig.Variadic() && n.Ellipsis == token.NoPos:
			dst = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		}
		c.convert(dst, arg)
	}
}

func (c *checker) ret(n *ast.ReturnStmt) {
	results := c.enclosingResults()
	if results == nil || len(n.Results) != results.Len() {
		return
	}
	for i, r := range n.Results {
		c.convert(results.At(i).Type(), r)
	}
}

func (c *checker) composite(n *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(n)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range n.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
						c.convert(obj.Type(), kv.Value)
					}
				}
				continue
			}
			if i < u.NumFields() {
				c.convert(u.Field(i).Type(), elt)
			}
		}
	case *types.Slice:
		for _, elt := range n.Elts {
			c.convert(u.Elem(), value(elt))
		}
	case *types.Array:
		for _, elt := range n.Elts {
			c.convert(u.Elem(), value(elt))
		}
	case *types.Map:
		for _, elt := range n.Elts {
			c.convert(u.Elem(), value(elt))
		}
	}
}

// value unwraps a composite-literal element's key:value form.
func value(elt ast.Expr) ast.Expr {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return elt
}

// exprString renders an identifier or selector chain ("a.b.c"); other
// expression forms return "".
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
			return ""
		}
		s := buf.String()
		if strings.ContainsAny(s, "()[]{} ") {
			return ""
		}
		return s
	}
	return ""
}
