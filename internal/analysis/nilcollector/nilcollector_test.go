package nilcollector_test

import (
	"testing"

	"ldplfs/internal/analysis/analysistest"
	"ldplfs/internal/analysis/nilcollector"
)

func TestNilCollector(t *testing.T) {
	analysistest.Run(t, "testdata", nilcollector.Analyzer, "a")
}
