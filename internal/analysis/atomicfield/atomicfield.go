// Package atomicfield flags plain reads and writes of variables that
// are accessed through sync/atomic functions elsewhere in the same
// package.
//
// The PR 5 runtime knob overrides (SetReadWorkers and friends) made
// "field written atomically, read from the data path" a standing
// pattern in this codebase. The engines migrated to atomic.Int32
// wrapper types, which make mixed access inexpressible — but
// function-style atomics (atomic.StoreInt32(&s.f, v)) guarantee nothing
// about other sites: one plain `s.f` read compiles fine, races under
// the hood, and only occasionally trips the race detector because the
// window is a single load. This analyzer closes the gap statically: if
// any site in the package takes a field's (or package-level variable's)
// address into a sync/atomic call, every other access to that variable
// must be atomic too.
//
// Mutex-guarded mixed use is a legitimate exception (atomic write,
// read under the lock that all writers hold) — suppress with an inline
// ignore backed by the allowlist.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldplfs/internal/analysis"
)

// Analyzer is the production instance.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flags plain loads/stores of fields accessed via sync/atomic elsewhere in " +
		"the package (mixed access is a data race the compiler accepts)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect every variable whose address feeds a sync/atomic
	// call, remembering the enclosing call so those sites aren't
	// re-flagged in pass 2.
	atomicVars := make(map[*types.Var]string) // var -> atomic func name
	atomicArgs := make(map[ast.Expr]bool)     // &x arguments inside atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := atomicCallee(pass, call)
			if fn == "" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := exprVar(pass, un.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = fn // first site in source order, for stable messages
					}
					atomicArgs[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: every other mention of those variables must be atomic.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || atomicArgs[e] {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			v := exprVar(pass, e)
			if v == nil {
				return true
			}
			fn, tracked := atomicVars[v]
			if !tracked {
				return true
			}
			pass.Reportf(e.Pos(),
				"plain access of %s, which is accessed atomically elsewhere (atomic.%s): use sync/atomic consistently or migrate the field to an atomic wrapper type",
				v.Name(), fn)
			return false
		})
	}
	return nil
}

// atomicCallee returns the sync/atomic function name for a direct
// atomic call ("" otherwise).
func atomicCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	if !strings.HasPrefix(fn.Name(), "Load") && !strings.HasPrefix(fn.Name(), "Store") &&
		!strings.HasPrefix(fn.Name(), "Add") && !strings.HasPrefix(fn.Name(), "Swap") &&
		!strings.HasPrefix(fn.Name(), "CompareAndSwap") {
		return ""
	}
	return fn.Name()
}

// exprVar resolves an identifier or field selection to the variable it
// names: a struct field (via Selections) or a package-level/local
// variable. Returns nil for anything else.
func exprVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}
