package atomicfield_test

import (
	"testing"

	"ldplfs/internal/analysis/analysistest"
	"ldplfs/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "a")
}
