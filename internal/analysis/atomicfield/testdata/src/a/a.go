// Fixture for the atomicfield analyzer: variables whose address feeds
// sync/atomic must never be touched with plain loads or stores.
package a

import "sync/atomic"

// knobs mirrors the PR 5 runtime-override pattern before the engines
// migrated to atomic wrapper types: function-style atomics over plain
// int fields.
type knobs struct {
	readWorkers int32
	stripeBytes int64
	label       string
}

// SetReadWorkers is the atomic writer that puts readWorkers under the
// analyzer's watch.
func (k *knobs) SetReadWorkers(n int32) {
	atomic.StoreInt32(&k.readWorkers, n)
}

// Atomic readers of a watched field are fine.
func (k *knobs) loadOK() int32 {
	return atomic.LoadInt32(&k.readWorkers)
}

// Regression: the race the wrapper migration closed. A plain read of
// an atomically-written field compiles, races, and only occasionally
// trips the detector because the window is one load.
func (k *knobs) plainRead() int32 {
	return k.readWorkers // want `plain access of readWorkers, which is accessed atomically elsewhere \(atomic\.StoreInt32\)`
}

func (k *knobs) plainWrite() {
	k.readWorkers = 1 // want `plain access of readWorkers`
}

func (k *knobs) addStripe(n int64) {
	atomic.AddInt64(&k.stripeBytes, n)
}

func (k *knobs) plainStripe() int64 {
	return k.stripeBytes // want `plain access of stripeBytes, which is accessed atomically elsewhere \(atomic\.AddInt64\)`
}

// Fields never touched by sync/atomic are out of scope.
func (k *knobs) labelOK() string {
	return k.label
}

// Package-level variables are watched the same way as fields.
var seq int64

func nextSeq() int64 {
	return atomic.AddInt64(&seq, 1)
}

func plainSeq() int64 {
	return seq // want `plain access of seq, which is accessed atomically elsewhere \(atomic\.AddInt64\)`
}
