package a

import (
	"sync"
	"sync/atomic"
)

// Mutex-guarded mixed use: the write is atomic so lock-free readers
// see it, and this reader holds the lock every writer holds. A
// legitimate exception, silenced with an inline ignore.
type guarded struct {
	mu  sync.Mutex
	gen int64
}

func (g *guarded) bump() {
	atomic.AddInt64(&g.gen, 1)
}

func (g *guarded) snapshot() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	//plfslint:ignore atomicfield fixture pins that a mutex-guarded mixed read may be suppressed
	return g.gen
}
