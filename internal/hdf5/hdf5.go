// Package hdf5 implements a miniature HDF5-flavoured container layout:
// a signed superblock, a dataset table (object headers), and contiguous
// typed datasets. FLASH-IO writes its checkpoints through this layer the
// way the real benchmark writes through the HDF-5 library: metadata from
// rank 0, dataset hyperslabs collectively from every rank.
//
// The format is self-describing and byte-stable, but deliberately a
// subset of real HDF5: enough structure that the I/O pattern (a serial
// header write followed by large aligned collective dataset writes)
// matches the paper's workload, which is what the reproduction needs.
package hdf5

import (
	"encoding/binary"
	"fmt"
)

// Signature opens every file (the real HDF5 magic).
var Signature = [8]byte{0x89, 'H', 'D', 'F', '\r', '\n', 0x1a, '\n'}

// Dataset describes one named, typed, n-dimensional dataset.
type Dataset struct {
	Name     string
	ElemSize int      // bytes per element (8 for float64)
	Dims     []uint64 // row-major
	// Offset is the absolute file offset of the dataset's contiguous
	// payload, filled in by BuildLayout.
	Offset int64
}

// Elements returns the total element count.
func (d *Dataset) Elements() uint64 {
	n := uint64(1)
	for _, v := range d.Dims {
		n *= v
	}
	return n
}

// Bytes returns the payload size.
func (d *Dataset) Bytes() int64 { return int64(d.Elements()) * int64(d.ElemSize) }

// File is an in-memory description of a (mini-)HDF5 file layout.
type File struct {
	Datasets []Dataset
	// HeaderBytes is the size of the serialised header; dataset payloads
	// start at aligned offsets beyond it.
	HeaderBytes int64
}

// alignment keeps dataset starts block-aligned, as HDF5 alignment tuning
// does for parallel file systems.
const alignment = 4096

func align(off int64) int64 {
	if rem := off % alignment; rem != 0 {
		return off + alignment - rem
	}
	return off
}

// BuildLayout computes header size and dataset offsets for the given
// datasets (in order).
func BuildLayout(datasets []Dataset) (*File, error) {
	f := &File{Datasets: make([]Dataset, len(datasets))}
	copy(f.Datasets, datasets)
	names := map[string]bool{}
	for i := range f.Datasets {
		d := &f.Datasets[i]
		if d.Name == "" || d.ElemSize <= 0 || len(d.Dims) == 0 {
			return nil, fmt.Errorf("hdf5: invalid dataset %+v", d)
		}
		if names[d.Name] {
			return nil, fmt.Errorf("hdf5: duplicate dataset %q", d.Name)
		}
		names[d.Name] = true
	}
	hdr := f.encodeHeader() // offsets still zero; size is what matters
	f.HeaderBytes = int64(len(hdr))
	off := align(f.HeaderBytes)
	for i := range f.Datasets {
		f.Datasets[i].Offset = off
		off = align(off + f.Datasets[i].Bytes())
	}
	return f, nil
}

// encodeHeader serialises the superblock and dataset table.
func (f *File) encodeHeader() []byte {
	var out []byte
	out = append(out, Signature[:]...)
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(len(f.Datasets)))
	out = append(out, word[:]...)
	for i := range f.Datasets {
		d := &f.Datasets[i]
		out = append(out, byte(len(d.Name)))
		out = append(out, d.Name...)
		binary.LittleEndian.PutUint64(word[:], uint64(d.ElemSize))
		out = append(out, word[:]...)
		binary.LittleEndian.PutUint64(word[:], uint64(len(d.Dims)))
		out = append(out, word[:]...)
		for _, v := range d.Dims {
			binary.LittleEndian.PutUint64(word[:], v)
			out = append(out, word[:]...)
		}
		binary.LittleEndian.PutUint64(word[:], uint64(d.Offset))
		out = append(out, word[:]...)
	}
	return out
}

// Header returns the final serialised header (offsets resolved).
func (f *File) Header() []byte { return f.encodeHeader() }

// Lookup finds a dataset by name.
func (f *File) Lookup(name string) (*Dataset, error) {
	for i := range f.Datasets {
		if f.Datasets[i].Name == name {
			return &f.Datasets[i], nil
		}
	}
	return nil, fmt.Errorf("hdf5: no dataset %q", name)
}

// ParseHeader decodes a header produced by Header. It needs at most
// MaxHeader bytes of the file's prefix.
func ParseHeader(b []byte) (*File, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("hdf5: short header")
	}
	for i, c := range Signature {
		if b[i] != c {
			return nil, fmt.Errorf("hdf5: bad signature")
		}
	}
	n := binary.LittleEndian.Uint64(b[8:])
	if n > 1<<20 {
		return nil, fmt.Errorf("hdf5: implausible dataset count %d", n)
	}
	pos := 16
	f := &File{}
	need := func(k int) error {
		if pos+k > len(b) {
			return fmt.Errorf("hdf5: truncated header")
		}
		return nil
	}
	for i := uint64(0); i < n; i++ {
		if err := need(1); err != nil {
			return nil, err
		}
		nameLen := int(b[pos])
		pos++
		if err := need(nameLen + 16); err != nil {
			return nil, err
		}
		d := Dataset{Name: string(b[pos : pos+nameLen])}
		pos += nameLen
		d.ElemSize = int(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
		nd := binary.LittleEndian.Uint64(b[pos:])
		pos += 8
		if nd > 16 {
			return nil, fmt.Errorf("hdf5: implausible rank %d", nd)
		}
		if err := need(int(nd)*8 + 8); err != nil {
			return nil, err
		}
		for j := uint64(0); j < nd; j++ {
			d.Dims = append(d.Dims, binary.LittleEndian.Uint64(b[pos:]))
			pos += 8
		}
		d.Offset = int64(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
		f.Datasets = append(f.Datasets, d)
	}
	f.HeaderBytes = int64(pos)
	return f, nil
}

// MaxHeader bounds how much prefix a reader must fetch to parse any
// header this package writes.
const MaxHeader = 1 << 20
