package hdf5

import (
	"testing"
	"testing/quick"
)

func TestLayoutRoundTrip(t *testing.T) {
	f, err := BuildLayout([]Dataset{
		{Name: "unknowns", ElemSize: 8, Dims: []uint64{80, 24, 24, 24, 5}},
		{Name: "coords", ElemSize: 8, Dims: []uint64{80, 3}},
		{Name: "refine level", ElemSize: 4, Dims: []uint64{80}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hdr := f.Header()
	got, err := ParseHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Datasets) != 3 {
		t.Fatalf("parsed %d datasets", len(got.Datasets))
	}
	for i, d := range got.Datasets {
		want := f.Datasets[i]
		if d.Name != want.Name || d.ElemSize != want.ElemSize || d.Offset != want.Offset {
			t.Fatalf("dataset %d: %+v != %+v", i, d, want)
		}
		for j := range want.Dims {
			if d.Dims[j] != want.Dims[j] {
				t.Fatalf("dataset %d dims differ", i)
			}
		}
	}
}

func TestLayoutNonOverlappingAligned(t *testing.T) {
	f, err := BuildLayout([]Dataset{
		{Name: "a", ElemSize: 8, Dims: []uint64{1000}},
		{Name: "b", ElemSize: 8, Dims: []uint64{1}},
		{Name: "c", ElemSize: 1, Dims: []uint64{4096, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := f.HeaderBytes
	for _, d := range f.Datasets {
		if d.Offset < prevEnd {
			t.Fatalf("dataset %s at %d overlaps previous end %d", d.Name, d.Offset, prevEnd)
		}
		if d.Offset%alignment != 0 {
			t.Fatalf("dataset %s offset %d not aligned", d.Name, d.Offset)
		}
		prevEnd = d.Offset + d.Bytes()
	}
}

func TestLayoutRejectsBadInput(t *testing.T) {
	cases := [][]Dataset{
		{{Name: "", ElemSize: 8, Dims: []uint64{1}}},
		{{Name: "x", ElemSize: 0, Dims: []uint64{1}}},
		{{Name: "x", ElemSize: 8, Dims: nil}},
		{{Name: "x", ElemSize: 8, Dims: []uint64{1}}, {Name: "x", ElemSize: 8, Dims: []uint64{2}}},
	}
	for i, c := range cases {
		if _, err := BuildLayout(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseHeaderRejectsGarbage(t *testing.T) {
	if _, err := ParseHeader([]byte("not an hdf5 file at all......")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseHeader(nil); err == nil {
		t.Fatal("nil accepted")
	}
	// Truncations of a valid header must error, not panic.
	f, _ := BuildLayout([]Dataset{{Name: "d", ElemSize: 8, Dims: []uint64{5, 5}}})
	hdr := f.Header()
	for cut := 1; cut < len(hdr); cut++ {
		if _, err := ParseHeader(hdr[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLookup(t *testing.T) {
	f, _ := BuildLayout([]Dataset{{Name: "var", ElemSize: 8, Dims: []uint64{2}}})
	if _, err := f.Lookup("var"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup("absent"); err == nil {
		t.Fatal("lookup of absent dataset succeeded")
	}
}

func TestHeaderQuickRoundTrip(t *testing.T) {
	fn := func(dims []uint16, elem uint8) bool {
		if len(dims) == 0 || len(dims) > 6 || elem == 0 {
			return true // skip invalid shapes
		}
		ds := Dataset{Name: "q", ElemSize: int(elem), Dims: nil}
		for _, v := range dims {
			ds.Dims = append(ds.Dims, uint64(v%512+1))
		}
		f, err := BuildLayout([]Dataset{ds})
		if err != nil {
			return false
		}
		got, err := ParseHeader(f.Header())
		if err != nil || len(got.Datasets) != 1 {
			return false
		}
		return got.Datasets[0].Offset == f.Datasets[0].Offset &&
			got.Datasets[0].Bytes() == f.Datasets[0].Bytes()
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}
