package harness

import (
	"bytes"
	"testing"

	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/posix"
)

func TestNewStoreLayout(t *testing.T) {
	store := NewStore()
	for _, d := range []string{ScratchDir, BackendDir} {
		st, err := store.Stat(d)
		if err != nil || !st.IsDir() {
			t.Fatalf("%s: %+v, %v", d, st, err)
		}
	}
}

func TestNewStoreNStripes(t *testing.T) {
	store := NewStoreN(3)
	striped, ok := store.(*posix.StripedFS)
	if !ok {
		t.Fatalf("NewStoreN(3) = %T, want *posix.StripedFS", store)
	}
	if striped.NumBackends() != 3 {
		t.Fatalf("NumBackends = %d, want 3", striped.NumBackends())
	}
	for _, d := range []string{ScratchDir, BackendDir} {
		st, err := store.Stat(d)
		if err != nil || !st.IsDir() {
			t.Fatalf("%s: %+v, %v", d, st, err)
		}
	}
	// Every method must run unchanged over a striped store.
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		drv, pathFor, err := DriverFor("ldplfs", store, r.Rank())
		if err != nil {
			panic(err)
		}
		fh, err := mpiio.Open(r, drv, pathFor("t"), mpiio.ModeCreate|mpiio.ModeRdwr, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		buf := bytes.Repeat([]byte{byte(r.Rank() + 1)}, 512)
		if _, err := fh.WriteAtAll(buf, int64(r.Rank())*512); err != nil {
			panic(err)
		}
		got := make([]byte, 512)
		peer := (r.Rank() + 1) % 4
		if _, err := fh.ReadAtAll(got, int64(peer)*512); err != nil {
			panic(err)
		}
		if got[0] != byte(peer+1) {
			panic("wrong bytes through striped store")
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if NewStoreN(1).(*posix.MemFS) == nil {
		t.Fatal("NewStoreN(1) should degenerate to a plain MemFS")
	}
}

func TestPrepareStoreIdempotent(t *testing.T) {
	mem := posix.NewMemFS()
	if err := PrepareStore(mem); err != nil {
		t.Fatal(err)
	}
	if err := PrepareStore(mem); err != nil {
		t.Fatalf("second PrepareStore: %v", err)
	}
}

func TestDriverForAllMethods(t *testing.T) {
	for _, method := range Methods {
		method := method
		t.Run(method, func(t *testing.T) {
			store := NewStore()
			err := mpi.Run(4, 2, func(r *mpi.Rank) {
				drv, pathFor, err := DriverFor(method, store, r.Rank())
				if err != nil {
					panic(err)
				}
				fh, err := mpiio.Open(r, drv, pathFor("t"), mpiio.ModeCreate|mpiio.ModeRdwr, mpiio.DefaultHints())
				if err != nil {
					panic(err)
				}
				buf := bytes.Repeat([]byte{byte(r.Rank() + 1)}, 512)
				if _, err := fh.WriteAtAll(buf, int64(r.Rank())*512); err != nil {
					panic(err)
				}
				got := make([]byte, 512)
				peer := (r.Rank() + 1) % 4
				if _, err := fh.ReadAtAll(got, int64(peer)*512); err != nil {
					panic(err)
				}
				if got[0] != byte(peer+1) {
					panic("wrong bytes through harness driver")
				}
				fh.Close()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDriverForUnknownMethod(t *testing.T) {
	if _, _, err := DriverFor("nfs", NewStore(), 0); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestPLFSMethodsShareContainers(t *testing.T) {
	// A container written via romio must be readable via ldplfs: both
	// route to the same backend layout.
	store := NewStore()
	err := mpi.Run(1, 1, func(r *mpi.Rank) {
		drv, pathFor, _ := DriverFor("romio", store, 0)
		fh, err := mpiio.Open(r, drv, pathFor("shared"), mpiio.ModeCreate|mpiio.ModeWronly, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		fh.WriteAtAll([]byte("cross-method"), 0)
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(1, 1, func(r *mpi.Rank) {
		drv, pathFor, _ := DriverFor("ldplfs", store, 0)
		fh, err := mpiio.Open(r, drv, pathFor("shared"), mpiio.ModeRdonly, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		got := make([]byte, 12)
		if n, err := fh.ReadAtAll(got, 0); err != nil || string(got[:n]) != "cross-method" {
			panic("container not shared across methods")
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
