package harness

import (
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/service/client"
)

// RemoteDialer is what RankDriver needs from the -remote flag group
// (satisfied by flags.Remote); a nil or disabled dialer selects the
// local in-process path.
type RemoteDialer interface {
	Enabled() bool
	Dial() (*client.Conn, error)
}

// RankDriver builds one rank's ADIO driver: against the gateway named
// by rd when remote mode is on (each rank dials its own connection —
// one session, one PLFS pid), otherwise the local method over fs. The
// path function addresses the PLFS mount either way, so kernels are
// oblivious to where the containers live.
func RankDriver(rd RemoteDialer, method string, fs posix.FS, rank int, opts ...plfs.Option) (mpiio.Driver, func(name string) string, error) {
	if rd != nil && rd.Enabled() {
		conn, err := rd.Dial()
		if err != nil {
			return nil, nil, err
		}
		return NewRemoteDriver(conn),
			func(name string) string { return MountPoint + "/" + name }, nil
	}
	return DriverForOpts(method, fs, rank, opts...)
}

// RemoteDriver adapts a plfsd gateway connection to the ADIO driver
// interface, so every workload kernel that runs over a local method
// (mpiio-test, bt-io, flash-io, ldrun scripts) runs unchanged against
// a remote daemon: each rank dials its own connection — one gateway
// session, one PLFS pid — and the kernels' collective structure is
// preserved because the driver surface is identical.
type RemoteDriver struct {
	conn *client.Conn
}

// NewRemoteDriver wraps an authenticated gateway connection.
func NewRemoteDriver(conn *client.Conn) *RemoteDriver {
	return &RemoteDriver{conn: conn}
}

// Name implements mpiio.Driver.
func (d *RemoteDriver) Name() string { return "remote" }

// Open implements mpiio.Driver.
func (d *RemoteDriver) Open(path string, amode int, rank int) (mpiio.DriverFile, error) {
	flags, err := mpiio.AmodeToFlags(amode)
	if err != nil {
		return nil, err
	}
	fd, err := d.conn.Open(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &remoteFile{conn: d.conn, fd: fd, path: path}, nil
}

// Delete implements mpiio.Driver.
func (d *RemoteDriver) Delete(path string) error { return d.conn.Unlink(path) }

// remoteFile is one open fd on the gateway.
type remoteFile struct {
	conn *client.Conn
	fd   int
	path string
}

func (f *remoteFile) PreadAt(p []byte, off int64) (int, error) {
	// Reads above the frame ceiling split into protocol-sized chunks; a
	// short chunk means EOF and ends the loop like a local pread would.
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > maxRemoteIO {
			n = maxRemoteIO
		}
		got, err := f.conn.Pread(f.fd, p[total:total+n], off+int64(total))
		total += got
		if err != nil {
			return total, err
		}
		if got < n {
			break
		}
	}
	return total, nil
}

func (f *remoteFile) PwriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > maxRemoteIO {
			n = maxRemoteIO
		}
		got, err := f.conn.Pwrite(f.fd, p[total:total+n], off+int64(total))
		total += got
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (f *remoteFile) Size() (int64, error) {
	st, err := f.conn.Fstat(f.fd)
	if err != nil {
		return 0, err
	}
	return st.Size, nil
}

func (f *remoteFile) Truncate(size int64) error { return f.conn.Truncate(f.path, size) }
func (f *remoteFile) Sync() error               { return f.conn.Sync(f.fd) }
func (f *remoteFile) Close() error              { return f.conn.CloseFd(f.fd) }

// maxRemoteIO keeps one data op comfortably inside MaxFramePayload
// with room for the fixed fields.
const maxRemoteIO = 4 << 20
