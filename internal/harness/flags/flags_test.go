package flags

import (
	"flag"
	"net"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/service"
)

func TestPlfsGroup(t *testing.T) {
	var p Plfs
	fl := flag.NewFlagSet("test", flag.ContinueOnError)
	p.Register(fl)
	err := fl.Parse([]string{
		"-index-batch", "64", "-write-workers", "4", "-read-workers", "2",
		"-merge-chunk-records", "128", "-no-auto-flatten", "-no-flattened-reads",
		"-autotune", "-stats",
	})
	if err != nil {
		t.Fatal(err)
	}

	plane := p.NewPlane()
	if plane == nil {
		t.Fatal("-stats must build a plane")
	}
	var eng plfs.EngineOptions
	var idx plfs.IndexOptions
	var tel plfs.TelemetryOptions
	var tun plfs.TuneOptions
	for _, o := range p.Options(plane) {
		switch v := o.(type) {
		case plfs.EngineOptions:
			eng = v
		case plfs.IndexOptions:
			idx = v
		case plfs.TelemetryOptions:
			tel = v
		case plfs.TuneOptions:
			tun = v
		default:
			t.Fatalf("unexpected option type %T", o)
		}
	}
	if eng.IndexBatch != 64 || eng.WriteWorkers != 4 || eng.ReadWorkers != 2 {
		t.Fatalf("engine group = %+v", eng)
	}
	if idx.MergeChunkRecords != 128 || !idx.DisableAutoFlatten || !idx.DisableFlattenedReads {
		t.Fatalf("index group = %+v", idx)
	}
	if tel.Stats != plane || !tun.Enable {
		t.Fatal("telemetry/tune groups not rendered")
	}

	var off Plfs
	if off.NewPlane() != nil {
		t.Fatal("plane without -stats")
	}
}

func TestJobGroup(t *testing.T) {
	var j Job
	fl := flag.NewFlagSet("test", flag.ContinueOnError)
	j.Register(fl, 8, "ldplfs")
	if err := fl.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if j.NP != 8 || j.Method != "ldplfs" || j.PPN != 2 || j.Backends != 1 || !j.Verify {
		t.Fatalf("defaults = %+v", j)
	}
}

func TestRemoteGroup(t *testing.T) {
	var r Remote
	fl := flag.NewFlagSet("test", flag.ContinueOnError)
	r.Register(fl)
	if err := fl.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if r.Enabled() {
		t.Fatal("enabled without -remote")
	}
	if _, err := r.Dial(); err == nil {
		t.Fatal("Dial without -remote succeeded")
	}

	// Against a live loopback gateway.
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	mounts, err := core.ParseMounts("/mnt/plfs=/backend")
	if err != nil {
		t.Fatal(err)
	}
	g, err := service.NewGateway(service.Config{
		Backend: mem,
		Mounts:  mounts,
		Tenants: []service.TenantConfig{{Name: "default"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(g)
	go srv.Serve(ln)
	defer srv.Close()

	fl = flag.NewFlagSet("test", flag.ContinueOnError)
	r = Remote{}
	r.Register(fl)
	if err := fl.Parse([]string{"-remote", ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if !r.Enabled() {
		t.Fatal("not enabled with -remote")
	}
	conn, err := r.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fd, err := conn.Open("/mnt/plfs/x", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseFd(fd); err != nil {
		t.Fatal(err)
	}
}
