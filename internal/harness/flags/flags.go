// Package flags centralises the flag registration the workload CLIs
// (ldrun, mpiio-test, bt-io, flash-io) used to duplicate: PLFS engine
// tuning, telemetry, MPI job shape, and the remote-gateway connection.
// Each tool registers the groups it needs on its own FlagSet and keeps
// its tool-specific flags local.
package flags

import (
	"flag"
	"fmt"

	"ldplfs/internal/iostats"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/service/client"
)

// Plfs is the engine-tuning flag group shared by every tool that can
// run over PLFS.
type Plfs struct {
	IndexBatch        int
	WriteWorkers      int
	ReadWorkers       int
	MergeChunkRecords int
	NoAutoFlatten     bool
	NoFlattenedReads  bool
	AutoTune          bool
	Stats             bool
}

// Register installs the group's flags on fl.
func (p *Plfs) Register(fl *flag.FlagSet) {
	fl.IntVar(&p.IndexBatch, "index-batch", 0, "PLFS index group-flush threshold in records (0 = default, <0 = flush only on sync)")
	fl.IntVar(&p.WriteWorkers, "write-workers", 0, "PLFS parallel pwrites per vectored write (0 = default)")
	fl.IntVar(&p.ReadWorkers, "read-workers", 0, "PLFS parallel preads per scatter-gather read (0 = default)")
	fl.IntVar(&p.MergeChunkRecords, "merge-chunk-records", 0, "records buffered per dropping stream during the index merge (0 = default; bounds merge memory)")
	fl.BoolVar(&p.NoAutoFlatten, "no-auto-flatten", false, "do not persist a flattened global index when a container's last writer closes")
	fl.BoolVar(&p.NoFlattenedReads, "no-flattened-reads", false, "ignore flattened index records; every cold open runs the streaming merge")
	fl.BoolVar(&p.AutoTune, "autotune", false, "let the PLFS feedback controller adapt ReadWorkers/WriteWorkers/IndexBatch online")
	fl.BoolVar(&p.Stats, "stats", false, "attach the iostats telemetry plane to every layer and dump a snapshot at exit")
}

// Options renders the group as grouped plfs options. The plane may be
// nil (no telemetry) — taking the concrete *iostats.Plane rather than
// the Collector interface keeps a typed-nil plane from turning into a
// non-nil interface downstream.
func (p *Plfs) Options(plane *iostats.Plane) []plfs.Option {
	var tel plfs.TelemetryOptions
	if plane != nil {
		tel.Stats = plane
	}
	return []plfs.Option{
		plfs.EngineOptions{
			IndexBatch:   p.IndexBatch,
			WriteWorkers: p.WriteWorkers,
			ReadWorkers:  p.ReadWorkers,
		},
		plfs.IndexOptions{
			MergeChunkRecords:     p.MergeChunkRecords,
			DisableAutoFlatten:    p.NoAutoFlatten,
			DisableFlattenedReads: p.NoFlattenedReads,
		},
		tel,
		plfs.TuneOptions{Enable: p.AutoTune},
	}
}

// NewPlane returns the telemetry plane the flags ask for, or nil.
func (p *Plfs) NewPlane() *iostats.Plane {
	if !p.Stats {
		return nil
	}
	return iostats.NewPlane()
}

// MPIIO is the collective-buffering flag group: the ROMIO-style hint
// knobs of the mpiio layer's two-phase collective path.
type MPIIO struct {
	CBBufferSize  int
	CBRounds      int
	CBAggregators int
	NoPipeline    bool
	SieveBuffer   int
	CBAutoTune    bool
}

// Register installs the group's flags on fl.
func (m *MPIIO) Register(fl *flag.FlagSet) {
	fl.IntVar(&m.CBBufferSize, "cb-buffer-size", 0, "collective-buffering staging size per aggregator round in bytes (0 = ROMIO default 16 MiB)")
	fl.IntVar(&m.CBRounds, "cb-rounds", 0, "pipelined collective rounds per aggregator domain (0 = derive from cb-buffer-size)")
	fl.IntVar(&m.CBAggregators, "cb-aggregators", 0, "aggregators per compute node (0 = the paper's default of 1)")
	fl.BoolVar(&m.NoPipeline, "no-cb-pipeline", false, "use the one-shot two-phase collective path instead of the pipelined overlapped rounds")
	fl.IntVar(&m.SieveBuffer, "sieve-buffer-size", 0, "data-sieving block size for independent strided access (0 = default 4 MiB)")
	fl.BoolVar(&m.CBAutoTune, "cb-autotune", false, "hill-climb cb-buffer-size/cb-rounds/cb-aggregators online")
}

// Hints renders the group over the ROMIO defaults.
func (m *MPIIO) Hints() mpiio.Hints {
	h := mpiio.DefaultHints()
	if m.CBBufferSize > 0 {
		h.CBBufferSize = m.CBBufferSize
	}
	if m.CBRounds > 0 {
		h.CBRounds = m.CBRounds
	}
	if m.CBAggregators > 0 {
		h.CBAggregators = m.CBAggregators
	}
	h.DisablePipeline = m.NoPipeline
	if m.SieveBuffer > 0 {
		h.SieveBufferSize = m.SieveBuffer
	}
	h.AutoTune = m.CBAutoTune
	return h
}

// Job is the MPI job-shape flag group of the workload kernels.
type Job struct {
	NP       int
	PPN      int
	Method   string
	Backends int
	Verify   bool
}

// Register installs the group's flags on fl with the given defaults
// for rank count and method.
func (j *Job) Register(fl *flag.FlagSet, defaultNP int, defaultMethod string) {
	fl.IntVar(&j.NP, "np", defaultNP, "number of ranks")
	fl.IntVar(&j.PPN, "ppn", 2, "processes per node")
	fl.StringVar(&j.Method, "method", defaultMethod, "access method: mpiio|fuse|romio|ldplfs")
	fl.IntVar(&j.Backends, "backends", 1, "stripe the store over this many backends (hostdirs spread across them; 1 = single backend)")
	fl.BoolVar(&j.Verify, "verify", true, "read back and verify")
}

// Remote is the gateway-connection flag group: when -remote is set the
// tool runs against a plfsd daemon instead of an in-process store.
type Remote struct {
	Addr   string
	Tenant string
}

// Register installs the group's flags on fl.
func (r *Remote) Register(fl *flag.FlagSet) {
	fl.StringVar(&r.Addr, "remote", "", "plfsd gateway address (host:port); empty = run in-process")
	fl.StringVar(&r.Tenant, "tenant", "default", "tenant name sent in the gateway hello")
}

// Enabled reports whether a gateway address was given.
func (r *Remote) Enabled() bool { return r.Addr != "" }

// Dial connects one rank to the gateway.
func (r *Remote) Dial() (*client.Conn, error) {
	if !r.Enabled() {
		return nil, fmt.Errorf("flags: -remote not set")
	}
	return client.Dial(r.Addr, r.Tenant)
}
