// Package harness wires the paper's four access methods onto a backing
// store for the command-line tools and benchmarks: given a method name it
// produces the per-rank ADIO driver and the path the application should
// open. The conventions match the experiments: PLFS containers live under
// /backend, the PLFS mount point is /mnt/plfs, plain shared files live
// under /scratch.
package harness

import (
	"fmt"
	"strings"

	"ldplfs/internal/core"
	"ldplfs/internal/fuse"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Standard layout used by the tools.
const (
	ScratchDir = "/scratch"
	BackendDir = "/backend"
	MountPoint = "/mnt/plfs"
)

// Methods lists the accepted method names.
var Methods = []string{"mpiio", "fuse", "romio", "ldplfs"}

// NewStore prepares a backing FS with the standard directories.
func NewStore() *posix.MemFS {
	mem := posix.NewMemFS()
	for _, d := range []string{ScratchDir, BackendDir} {
		if err := mem.Mkdir(d, 0o755); err != nil {
			panic(fmt.Sprintf("harness: mkdir %s: %v", d, err))
		}
	}
	return mem
}

// NewStoreN prepares a backing store striped over n in-memory backends
// (the -backends flag of the workload CLIs): PLFS containers created
// under it spread their hostdirs — and so their droppings — across all
// n, while backend 0 holds the canonical metadata. n <= 1 degenerates to
// a single plain MemFS.
func NewStoreN(n int) posix.FS {
	return NewStoreLayout(n, "")
}

// NewStoreLayout prepares a backing store striped over n in-memory
// backends under the named placement layout ("" or "mod-n" for classic
// striping, "replica-R" for R-way replicated droppings — the -layout
// flag of the workload CLIs). n <= 1 with the default layout degenerates
// to a single plain MemFS. An invalid descriptor panics: the CLIs
// validate flags before building stores.
func NewStoreLayout(n int, desc string) posix.FS {
	if n <= 1 && desc == "" {
		return NewStore()
	}
	layout, err := posix.LayoutFor(desc, n)
	if err != nil {
		panic("harness: " + err.Error())
	}
	backends := make([]posix.FS, n)
	for i := range backends {
		backends[i] = posix.NewMemFS()
	}
	striped := posix.NewLayoutFS(layout, posix.ReplicaOptions{}, backends...)
	if err := PrepareStore(striped); err != nil {
		panic(err.Error())
	}
	return striped
}

// Instrument wraps store so that every backend operation — whichever
// method and PLFS machinery runs above it — reports to c's "posix"
// layer. A nil collector returns the store unchanged, so the CLIs can
// thread their -stats flag through unconditionally.
func Instrument(store posix.FS, c iostats.Collector) posix.FS {
	if c == nil {
		return store
	}
	return posix.NewInstrumentFS(store, c)
}

// PrepareStore creates the standard directories on an existing FS (for
// OS-backed stores); existing directories are fine.
func PrepareStore(fs posix.FS) error {
	for _, d := range []string{ScratchDir, BackendDir} {
		if err := fs.Mkdir(d, 0o755); err != nil && err != posix.EEXIST {
			return fmt.Errorf("harness: mkdir %s: %w", d, err)
		}
	}
	return nil
}

// DriverFor builds the per-rank ADIO driver for a named method over fs
// with default PLFS options, and returns the application-visible path
// for the given file name.
func DriverFor(method string, fs posix.FS, rank int) (mpiio.Driver, func(name string) string, error) {
	return DriverForOpts(method, fs, rank)
}

// DriverForOpts is DriverFor with explicit PLFS options — any mix of
// grouped option structs (plfs.EngineOptions{...}), a whole
// plfs.Config, or the deprecated flat plfs.Options — so the CLI tools
// can thread engine tuning (ReadWorkers, WriteWorkers, IndexBatch, ...)
// down to whichever methods run over PLFS.
func DriverForOpts(method string, fs posix.FS, rank int, opts ...plfs.Option) (mpiio.Driver, func(name string) string, error) {
	switch method {
	case "mpiio":
		return mpiio.NewUFS(posix.NewDispatch(fs)),
			func(name string) string { return ScratchDir + "/" + name }, nil
	case "romio":
		p := plfs.New(fs, opts...)
		drv := mpiio.NewPLFSDriver(p, func(path string) (string, bool) {
			if strings.HasPrefix(path, MountPoint+"/") {
				return BackendDir + path[len(MountPoint):], true
			}
			return "", false
		})
		return drv, func(name string) string { return MountPoint + "/" + name }, nil
	case "ldplfs":
		d := posix.NewDispatch(fs)
		if _, err := core.Preload(d, core.Config{
			Mounts: []core.Mount{{Point: MountPoint, Backend: BackendDir}},
			Pid:    uint32(rank),
			Plfs:   plfs.New(fs, opts...),
		}); err != nil {
			return nil, nil, err
		}
		return mpiio.NewUFS(d),
			func(name string) string { return MountPoint + "/" + name }, nil
	case "fuse":
		return mpiio.NewUFS(fuse.Mount(fs, MountPoint, BackendDir, opts...)),
			func(name string) string { return MountPoint + "/" + name }, nil
	}
	return nil, nil, fmt.Errorf("harness: unknown method %q (want one of %v)", method, Methods)
}
