package harness

import (
	"bytes"
	"net"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/posix"
	"ldplfs/internal/service"
	"ldplfs/internal/service/client"
)

type testDialer struct {
	addr string
}

func (d *testDialer) Enabled() bool { return d.addr != "" }
func (d *testDialer) Dial() (*client.Conn, error) {
	return client.Dial(d.addr, "default")
}

func startRemoteGateway(t *testing.T) string {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	mounts, err := core.ParseMounts(MountPoint + "=/backend")
	if err != nil {
		t.Fatal(err)
	}
	g, err := service.NewGateway(service.Config{
		Backend: mem,
		Mounts:  mounts,
		Tenants: []service.TenantConfig{{Name: "default"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(g)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestRemoteDriverRoundTrip(t *testing.T) {
	addr := startRemoteGateway(t)
	d, pathFor, err := RankDriver(&testDialer{addr: addr}, "ldplfs", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "remote" {
		t.Fatalf("driver %q", d.Name())
	}
	path := pathFor("ckpt")

	f, err := d.Open(path, mpiio.ModeCreate|mpiio.ModeRdwr, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("rank0"), 4000)
	if n, err := f.PwriteAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("PwriteAt = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if size, err := f.Size(); err != nil || size != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	got := make([]byte, len(payload))
	if n, err := f.PreadAt(got, 0); err != nil || n != len(payload) {
		t.Fatalf("PreadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("remote read-back mismatch")
	}
	// Short read at EOF: ask past the end.
	tail := make([]byte, 64)
	if n, err := f.PreadAt(tail, int64(len(payload))-32); err != nil || n != 32 {
		t.Fatalf("short PreadAt = %d, %v", n, err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 10 {
		t.Fatalf("size after truncate = %d", size)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(path); err != nil {
		t.Fatal(err)
	}
}

func TestRankDriverLocalFallback(t *testing.T) {
	mem := posix.NewMemFS()
	if err := mem.Mkdir(BackendDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, rd := range []RemoteDialer{nil, &testDialer{}} {
		d, pathFor, err := RankDriver(rd, "ldplfs", mem, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() == "remote" {
			t.Fatal("local fallback picked the remote driver")
		}
		if pathFor("x") == "" {
			t.Fatal("empty path")
		}
	}
}
