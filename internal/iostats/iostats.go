// Package iostats is the unified I/O telemetry plane: every layer of
// the stack (posix backends, the PLFS read/write engines, the shared
// read caches, the MPI-IO collective path, the iotrace recorder)
// reports through one Collector instead of growing its own ad-hoc
// stats struct.
//
// The design goals, in order:
//
//   - Pay-for-what-you-touch. A layer holds a *LayerStats handle; nil
//     means telemetry is off and every recording call is a single nil
//     check. No layer ever branches on a config flag.
//   - Low overhead when on. Counters are sharded across padded cache
//     lines (writers on different Ps rarely contend on one word), and
//     histograms are fixed power-of-two buckets — one bits.Len64 and
//     one atomic add per observation, no allocation, no locks.
//   - One vocabulary. Every operation is classified into the small Op
//     set (open/read/write/sync/meta) with bytes, latency and errors;
//     layer-specific quantities (cache hits, shim passthroughs, ...)
//     are named counters registered on the layer.
//
// A Plane is the concrete Collector: a named set of layers, snapshotted
// atomically-enough for dashboards (`plfsctl stats`, the CLIs' -stats
// flag) and consumed online by the autotune controller
// (internal/plfs/tune), which steers engine knobs from the byte
// counters alone — the PAIO "stage-based instrumentation" idea crossed
// with IOPathTune's observe-only tuning loop.
package iostats

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Op classifies an operation for the per-layer breakdown.
type Op int

// Operation classes. Meta covers the long tail (stat, unlink, mkdir,
// readdir, rename, truncate, access, close).
const (
	Open Op = iota
	Read
	Write
	Sync
	Meta
	NumOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Open:
		return "open"
	case Read:
		return "read"
	case Write:
		return "write"
	case Sync:
		return "sync"
	case Meta:
		return "meta"
	}
	return "?"
}

// counterShards is the fan-out of one Counter. Power of two.
const counterShards = 8

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards never false-share
}

// Counter is a sharded atomic counter: adds land on one of
// counterShards padded cells picked by the caller's stack address, so
// goroutines on different stacks (hence usually different Ps) do not
// fight over one cache line. Load folds the shards. The zero value is
// ready to use.
type Counter struct {
	shards [counterShards]paddedInt64
}

// NewCounter returns a standalone counter (not registered on any
// layer). Layers hand out registered counters via LayerStats.Counter.
func NewCounter() *Counter { return &Counter{} }

// shardIdx picks a shard from the address of a stack local: distinct
// goroutines live on distinct stacks, so the mixed bits spread their
// adds across shards without any per-goroutine state.
func shardIdx() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((p>>10)^(p>>17)) & (counterShards - 1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIdx()].v.Add(n)
}

// Load returns the current total.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// histBuckets bounds the power-of-two histograms: bucket i counts
// values v with bits.Len64(v) == i (so bucket 11 is 1 KiB..2 KiB-1);
// the last bucket absorbs everything larger (>= 2^38 ns is ~4.5 min,
// >= 2^38 bytes is 256 GiB — beyond anything this stack produces).
const histBuckets = 39

// Hist is a fixed-bucket power-of-two histogram. The zero value is
// ready to use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (v <= 0 lands in bucket 0).
func (h *Hist) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
}

// snapshot copies the buckets.
func (h *Hist) snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// top of the bucket the q-th observation falls in. Zero observations
// return 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1 << uint(i) // upper bound of bucket i
		}
	}
	return 1 << uint(histBuckets)
}

// opStats is the per-(layer, op) record.
type opStats struct {
	count Counter
	errs  Counter
	bytes Counter
	lat   Hist // nanoseconds
	size  Hist // bytes per op (only ops that moved bytes)
}

// LayerStats is one instrumented stage of the I/O path. All methods
// are safe for concurrent use and safe on a nil receiver (telemetry
// off): a nil handle records nothing and costs one branch.
type LayerStats struct {
	name string
	ops  [NumOps]opStats

	mu       sync.Mutex
	counters map[string]*Counter
}

// NewLayerStats returns a standalone layer, not attached to any Plane
// — for components that keep their own counters regardless of whether
// an operator wired up a collector (FaultFS, the autotune source).
func NewLayerStats(name string) *LayerStats {
	return &LayerStats{name: name, counters: make(map[string]*Counter)}
}

// Name returns the layer name ("" on nil).
func (l *LayerStats) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Start samples the clock for a latency measurement. On a nil layer it
// returns the zero time without touching the clock, so disabled
// telemetry never pays for time.Now.
func (l *LayerStats) Start() time.Time {
	if l == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records one completed operation: count, bytes moved (negative
// is recorded as zero), latency since start (skipped when start is
// zero) and the error outcome.
func (l *LayerStats) End(op Op, bytes int64, start time.Time, err error) {
	if l == nil {
		return
	}
	s := &l.ops[op]
	s.count.Add(1)
	if err != nil {
		s.errs.Add(1)
	}
	if bytes > 0 {
		s.bytes.Add(bytes)
		s.size.Observe(bytes)
	}
	if !start.IsZero() {
		s.lat.Observe(int64(time.Since(start)))
	}
}

// Add records one operation without a latency sample.
func (l *LayerStats) Add(op Op, bytes int64) { l.End(op, bytes, time.Time{}, nil) }

// OpCount returns the operation count for op.
func (l *LayerStats) OpCount(op Op) int64 {
	if l == nil {
		return 0
	}
	return l.ops[op].count.Load()
}

// OpBytes returns the bytes moved by op.
func (l *LayerStats) OpBytes(op Op) int64 {
	if l == nil {
		return 0
	}
	return l.ops[op].bytes.Load()
}

// OpErrors returns the error count for op.
func (l *LayerStats) OpErrors(op Op) int64 {
	if l == nil {
		return 0
	}
	return l.ops[op].errs.Load()
}

// Counter returns (registering on first use) the named layer counter.
// On a nil layer it returns a standalone counter, so callers can grab
// their counters once at construction and use them unconditionally.
func (l *LayerStats) Counter(name string) *Counter {
	if l == nil {
		return NewCounter()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.counters == nil {
		l.counters = make(map[string]*Counter)
	}
	c, ok := l.counters[name]
	if !ok {
		c = NewCounter()
		l.counters[name] = c
	}
	return c
}

// snapshot renders the layer.
func (l *LayerStats) snapshot() LayerSnapshot {
	s := LayerSnapshot{Name: l.name}
	for op := Op(0); op < NumOps; op++ {
		o := &l.ops[op]
		count := o.count.Load()
		if count == 0 {
			continue
		}
		s.Ops = append(s.Ops, OpSnapshot{
			Op:     op.String(),
			Count:  count,
			Errors: o.errs.Load(),
			Bytes:  o.bytes.Load(),
			Lat:    o.lat.snapshot(),
			Size:   o.size.snapshot(),
		})
	}
	l.mu.Lock()
	names := make([]string, 0, len(l.counters))
	for name := range l.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: l.counters[name].Load()})
	}
	l.mu.Unlock()
	return s
}

// Collector is the plane's registration interface: an instrumented
// layer asks for its handle once and records through it thereafter.
// Asking twice for one name returns the same handle, so layers
// instantiated per rank (or per FS instance) over one plane aggregate
// into one view.
type Collector interface {
	// Layer returns the stats handle for the named layer, creating it
	// on first use.
	Layer(name string) *LayerStats
}

// Plane is the concrete Collector: a registry of layers in
// registration order.
type Plane struct {
	mu     sync.Mutex
	layers map[string]*LayerStats
	order  []string
}

// NewPlane returns an empty telemetry plane.
func NewPlane() *Plane {
	return &Plane{layers: make(map[string]*LayerStats)}
}

// Layer implements Collector. Like the LayerStats handles it returns,
// it is nil-receiver safe: a nil *Plane (telemetry off) yields a nil
// handle — important because a typed-nil *Plane stored in a Collector
// interface still dispatches here.
func (p *Plane) Layer(name string) *LayerStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.layers[name]
	if !ok {
		l = NewLayerStats(name)
		p.layers[name] = l
		p.order = append(p.order, name)
	}
	return l
}

// Snapshot captures every layer. Counters are read without a global
// pause, so a snapshot taken under load is consistent per counter, not
// across counters — fine for dashboards, which is what it is for.
func (p *Plane) Snapshot() Snapshot {
	p.mu.Lock()
	order := append([]string(nil), p.order...)
	layers := make([]*LayerStats, len(order))
	for i, name := range order {
		layers[i] = p.layers[name]
	}
	p.mu.Unlock()
	var s Snapshot
	for _, l := range layers {
		s.Layers = append(s.Layers, l.snapshot())
	}
	return s
}

// Snapshot is a point-in-time copy of a Plane.
type Snapshot struct {
	Layers []LayerSnapshot
}

// LayerSnapshot is one layer's copy: per-op rows (ops with zero count
// omitted) plus named counters in name order.
type LayerSnapshot struct {
	Name     string
	Ops      []OpSnapshot
	Counters []CounterSnapshot
}

// OpSnapshot is one (layer, op) row.
type OpSnapshot struct {
	Op     string
	Count  int64
	Errors int64
	Bytes  int64
	Lat    HistSnapshot
	Size   HistSnapshot
}

// CounterSnapshot is one named layer counter.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// Format renders the snapshot as aligned text, one block per layer.
func (s Snapshot) Format(w io.Writer) {
	for i, l := range s.Layers {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "layer %s\n", l.Name)
		for _, o := range l.Ops {
			fmt.Fprintf(w, "  %-6s %8d ops", o.Op, o.Count)
			if o.Bytes > 0 {
				fmt.Fprintf(w, "  %12d bytes", o.Bytes)
			}
			if o.Errors > 0 {
				fmt.Fprintf(w, "  %d errs", o.Errors)
			}
			if o.Lat.Count > 0 {
				fmt.Fprintf(w, "  p50<%v p99<%v",
					time.Duration(o.Lat.Quantile(0.50)), time.Duration(o.Lat.Quantile(0.99)))
			}
			fmt.Fprintln(w)
		}
		for _, c := range l.Counters {
			fmt.Fprintf(w, "  %s = %d\n", c.Name, c.Value)
		}
	}
}

// String renders the snapshot via Format.
func (s Snapshot) String() string {
	var sb strings.Builder
	s.Format(&sb)
	return sb.String()
}
