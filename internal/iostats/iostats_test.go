package iostats

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentAdds(t *testing.T) {
	c := NewCounter()
	const goroutines, adds = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*adds {
		t.Fatalf("Load = %d, want %d", got, goroutines*adds)
	}
}

func TestNilSafety(t *testing.T) {
	var l *LayerStats
	if !l.Start().IsZero() {
		t.Fatal("nil Start should not sample the clock")
	}
	l.End(Read, 100, time.Time{}, nil) // must not panic
	l.Add(Write, 5)
	if l.OpCount(Read) != 0 || l.OpBytes(Write) != 0 || l.OpErrors(Read) != 0 {
		t.Fatal("nil layer reported non-zero stats")
	}
	if l.Name() != "" {
		t.Fatal("nil layer has a name")
	}
	// A nil layer still hands out usable (standalone) counters.
	c := l.Counter("hits")
	c.Add(3)
	if c.Load() != 3 {
		t.Fatalf("standalone counter = %d, want 3", c.Load())
	}
	var nilCounter *Counter
	nilCounter.Add(1)
	if nilCounter.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
}

func TestLayerStatsRecords(t *testing.T) {
	l := NewLayerStats("plfs")
	start := l.Start()
	l.End(Read, 4096, start, nil)
	l.End(Read, 0, l.Start(), errors.New("boom"))
	l.Add(Write, 1024)

	if got := l.OpCount(Read); got != 2 {
		t.Fatalf("read count = %d, want 2", got)
	}
	if got := l.OpBytes(Read); got != 4096 {
		t.Fatalf("read bytes = %d, want 4096", got)
	}
	if got := l.OpErrors(Read); got != 1 {
		t.Fatalf("read errors = %d, want 1", got)
	}
	if got := l.OpBytes(Write); got != 1024 {
		t.Fatalf("write bytes = %d, want 1024", got)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 0; i < 99; i++ {
		h.Observe(1000) // bucket 10, upper bound 1024
	}
	h.Observe(1 << 20) // one outlier
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if q := s.Quantile(0.50); q != 1024 {
		t.Fatalf("p50 = %d, want 1024", q)
	}
	if q := s.Quantile(1.0); q != 1<<21 {
		t.Fatalf("p100 = %d, want %d", q, 1<<21)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	var zeros Hist
	zeros.Observe(0)
	zeros.Observe(-5)
	if zs := zeros.snapshot(); zs.Buckets[0] != 2 {
		t.Fatalf("non-positive observations = %d in bucket 0, want 2", zs.Buckets[0])
	}
}

func TestPlaneLayersAggregateAndOrder(t *testing.T) {
	p := NewPlane()
	a := p.Layer("posix")
	b := p.Layer("plfs")
	if p.Layer("posix") != a {
		t.Fatal("second Layer(posix) returned a different handle")
	}
	a.Add(Read, 10)
	b.Add(Write, 20)
	b.Counter("hits").Add(7)

	s := p.Snapshot()
	if len(s.Layers) != 2 || s.Layers[0].Name != "posix" || s.Layers[1].Name != "plfs" {
		t.Fatalf("layers = %+v, want registration order posix,plfs", s.Layers)
	}
	if len(s.Layers[0].Ops) != 1 || s.Layers[0].Ops[0].Op != "read" || s.Layers[0].Ops[0].Bytes != 10 {
		t.Fatalf("posix ops = %+v", s.Layers[0].Ops)
	}
	if len(s.Layers[1].Counters) != 1 || s.Layers[1].Counters[0] != (CounterSnapshot{Name: "hits", Value: 7}) {
		t.Fatalf("plfs counters = %+v", s.Layers[1].Counters)
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{Open: "open", Read: "read", Write: "write", Sync: "sync", Meta: "meta", NumOps: "?"}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), op.String(), name)
		}
	}
}

func TestSnapshotFormat(t *testing.T) {
	p := NewPlane()
	l := p.Layer("readcache")
	l.End(Read, 123, l.Start(), nil)
	l.Counter("hits").Add(2)
	out := p.Snapshot().String()
	for _, want := range []string{"layer readcache", "read", "123 bytes", "hits = 2", "p50<"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot output missing %q:\n%s", want, out)
		}
	}
}
