package ldplfs_test

import (
	"fmt"
	"testing"

	"ldplfs/internal/bench"
	"ldplfs/internal/core"
	"ldplfs/internal/fsim"
	"ldplfs/internal/fuse"
	"ldplfs/internal/harness"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
	"ldplfs/internal/workload"
)

// --- model benches: one per table / figure of the paper -------------------
//
// Each bench regenerates the experiment from the platform models and
// reports the figure's headline number as a custom metric, so
// `go test -bench .` reproduces the evaluation section end to end.

func BenchmarkTable1_Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.TableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func benchFig3(b *testing.B, ppn int, read bool) {
	p := fsim.Minerva()
	var plateauPLFS, plateauMPI float64
	for i := 0; i < b.N; i++ {
		s := p.Fig3Series(ppn, read, fsim.Fig3Nodes)
		last := len(fsim.Fig3Nodes) - 1
		plateauPLFS = s[fsim.LDPLFS][last]
		plateauMPI = s[fsim.MPIIO][last]
	}
	b.ReportMetric(plateauPLFS, "LDPLFS-MB/s@64nodes")
	b.ReportMetric(plateauMPI, "MPIIO-MB/s@64nodes")
}

func BenchmarkFig3a_Write1PPN(b *testing.B) { benchFig3(b, 1, false) }
func BenchmarkFig3b_Write2PPN(b *testing.B) { benchFig3(b, 2, false) }
func BenchmarkFig3c_Write4PPN(b *testing.B) { benchFig3(b, 4, false) }
func BenchmarkFig3d_Read1PPN(b *testing.B)  { benchFig3(b, 1, true) }
func BenchmarkFig3e_Read2PPN(b *testing.B)  { benchFig3(b, 2, true) }
func BenchmarkFig3f_Read4PPN(b *testing.B)  { benchFig3(b, 4, true) }

func BenchmarkTable2_UnixTools(b *testing.B) {
	p := fsim.Minerva()
	var cpPlfs float64
	for i := 0; i < b.N; i++ {
		rows := p.TableII()
		cpPlfs = rows[0].PlfsSecs
	}
	b.ReportMetric(cpPlfs, "cp-from-plfs-secs")
}

func BenchmarkFig4a_BTClassC(b *testing.B) {
	p := fsim.Sierra()
	var peak float64
	for i := 0; i < b.N; i++ {
		s := p.BTSeries(fsim.BTClassC, fsim.Fig4aCores)
		peak = s[fsim.LDPLFS][len(fsim.Fig4aCores)-1]
	}
	b.ReportMetric(peak, "LDPLFS-MB/s@1024cores")
}

func BenchmarkFig4b_BTClassD(b *testing.B) {
	p := fsim.Sierra()
	var dip float64
	for i := 0; i < b.N; i++ {
		s := p.BTSeries(fsim.BTClassD, fsim.Fig4bCores)
		dip = s[fsim.LDPLFS][2] // the 1,024-core cache cliff
	}
	b.ReportMetric(dip, "LDPLFS-MB/s@1024cores-dip")
}

func BenchmarkFig5_FlashIO(b *testing.B) {
	p := fsim.Sierra()
	var peak, collapse float64
	for i := 0; i < b.N; i++ {
		s := p.FlashSeries(fsim.Fig5Cores)
		for _, v := range s[fsim.LDPLFS] {
			if v > peak {
				peak = v
			}
		}
		collapse = s[fsim.LDPLFS][len(fsim.Fig5Cores)-1]
	}
	b.ReportMetric(peak, "peak-MB/s")
	b.ReportMetric(collapse, "collapse-MB/s@3072")
}

// --- functional benches: the real stack moving real bytes -----------------

// benchShimEnv builds a preloaded process over MemFS.
func benchShimEnv(b *testing.B) *posix.Dispatch {
	b.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		b.Fatal(err)
	}
	d := posix.NewDispatch(mem)
	if _, err := core.Preload(d, core.Config{
		Mounts: []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:    1,
	}); err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkLDPLFSWrite1MiB(b *testing.B) {
	d := benchShimEnv(b)
	fd, err := d.Open("/mnt/plfs/bench", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close(fd)
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Write(fd, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlainWrite1MiB(b *testing.B) {
	mem := posix.NewMemFS()
	d := posix.NewDispatch(mem)
	fd, err := d.Open("/bench", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close(fd)
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Write(fd, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuseWrite1MiB(b *testing.B) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	fs := fuse.Mount(mem, "/mnt/plfs", "/backend", plfs.DefaultOptions())
	fd, err := fs.Open("/mnt/plfs/bench", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close(fd)
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Write(fd, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDPLFSRead1MiB(b *testing.B) {
	d := benchShimEnv(b)
	fd, _ := d.Open("/mnt/plfs/bench", posix.O_CREAT|posix.O_RDWR, 0o644)
	defer d.Close(fd)
	buf := make([]byte, 1<<20)
	for i := 0; i < 16; i++ {
		d.Write(fd, buf)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%16) << 20
		if _, err := d.Pread(fd, buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuild10k(b *testing.B) {
	entries := make([]idx.Entry, 10000)
	for i := range entries {
		entries[i] = idx.Entry{
			LogicalOffset:  int64(i) * 4096,
			Length:         4096,
			PhysicalOffset: int64(i) * 4096,
			Timestamp:      uint64(i + 1),
			Pid:            uint32(i % 64),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := idx.Build(entries); g.Size() == 0 {
			b.Fatal("empty index")
		}
	}
}

func BenchmarkCollectiveWrite8Ranks(b *testing.B) {
	const block = 256 << 10
	b.SetBytes(8 * block)
	for i := 0; i < b.N; i++ {
		store := harness.NewStore()
		err := mpi.Run(8, 4, func(r *mpi.Rank) {
			drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
			if err != nil {
				panic(err)
			}
			fh, err := mpiio.Open(r, drv, pathFor("bench"), mpiio.ModeCreate|mpiio.ModeWronly, mpiio.DefaultHints())
			if err != nil {
				panic(err)
			}
			buf := make([]byte, block)
			if _, err := fh.WriteAtAll(buf, int64(r.Rank())*block); err != nil {
				panic(err)
			}
			fh.Close()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTIOKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := harness.NewStore()
		err := mpi.Run(4, 2, func(r *mpi.Rank) {
			drv, pathFor, err := harness.DriverFor("romio", store, r.Rank())
			if err != nil {
				panic(err)
			}
			if _, err := workload.RunBTIO(r, drv, pathFor(fmt.Sprintf("bt%d", i)),
				workload.BTIOConfig{Grid: 16, Steps: 2, Hints: mpiio.DefaultHints()}, false); err != nil {
				panic(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlashIOKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := harness.NewStore()
		err := mpi.Run(4, 2, func(r *mpi.Rank) {
			drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
			if err != nil {
				panic(err)
			}
			if _, err := workload.RunFlashIO(r, drv, pathFor(fmt.Sprintf("fl%d", i)),
				workload.FlashIOConfig{NXB: 4, NBlocks: 2, NVars: 4, Hints: mpiio.DefaultHints()}); err != nil {
				panic(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
