// Package ldplfs is a from-scratch Go reproduction of "LDPLFS: Improving
// I/O Performance Without Application Modification" (Wright et al., IPDPS
// Workshops 2012): a dynamically loadable shim that retargets POSIX file
// operations onto the Parallel Log-structured File System, plus every
// substrate the paper's evaluation depends on — PLFS itself, a POSIX VFS
// layer with an interposable symbol table, an in-process MPI runtime, the
// ROMIO MPI-IO stack, a FUSE-path emulator, the three benchmark kernels,
// and queueing models of the Minerva (GPFS) and Sierra (Lustre) platforms
// that regenerate every table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results.
package ldplfs
