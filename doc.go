// Package ldplfs is a from-scratch Go reproduction of "LDPLFS: Improving
// I/O Performance Without Application Modification" (Wright et al., IPDPS
// Workshops 2012): a dynamically loadable shim that retargets POSIX file
// operations onto the Parallel Log-structured File System, plus every
// substrate the paper's evaluation depends on — PLFS itself, a POSIX VFS
// layer with an interposable symbol table, an in-process MPI runtime, the
// ROMIO MPI-IO stack, a FUSE-path emulator, the three benchmark kernels,
// and queueing models of the Minerva (GPFS) and Sierra (Lustre) platforms
// that regenerate every table and figure.
//
// The module builds with a bare Go 1.24 toolchain: `go build ./...`
// and `go test ./...` cover all packages; CI (.github/workflows/ci.yml)
// adds vet, gofmt, race-detector and benchmark-smoke jobs.
//
// The PLFS read path is a concurrent engine: merged container indexes
// are cached per instance and shared across opens (generation-based
// invalidation plus close-to-open signature revalidation), index
// reconstruction fans out across droppings on a bounded worker pool,
// and each read scatter-gathers its extents with parallel positional
// reads through a capped descriptor cache. See README.md ("The read
// engine") and internal/plfs/readcache.
//
// The write path is its twin: per-writer sharded locking (writes and
// syncs for distinct pids proceed fully in parallel under a shared
// handle lock), batched index appends (Options.IndexBatch), and
// vectored multi-extent writes (File.WriteV, Options.WriteWorkers)
// that reserve a physical range up front and fan segment pwrites out
// concurrently. Partial writes are always indexed to exactly the
// durable prefix. See README.md ("The write engine").
//
// Containers can be striped over multiple backends
// (posix.StripedFS / plfs.Options.Backends, the -backends CLI flags):
// canonical metadata lives on backend 0 while hostdirs — and so data
// and index droppings — distribute across all backends by hostdir
// number, letting both engines aggregate bandwidth over independent
// stores.
//
// The metadata path answers PLFS's cold-open wall with a flattened
// global index: the container's resolved extent table persists as a
// checksummed index.flattened.<gen> record (written atomically at
// last-writer close and by plfsctl compact, living with the canonical
// metadata on backend 0), which a cold Open/Stat loads in O(extents)
// after revalidating the record's embedded raw-dropping signature —
// any newer dropping or live writer silently demotes the build to a
// memory-bounded streaming merge (chunked dropping streams k-way-merged
// into a chunked interval map, replacing slurp-then-sort). See
// README.md ("The flattened global index") and
// internal/plfs/index/flattened.go for the lifecycle and trust rules.
//
// Telemetry is a single cross-cutting plane (internal/iostats): the
// posix backends (via the composable posix.InstrumentFS wrapper), the
// PLFS engines and read caches (plfs.Options.Stats), the MPI-IO
// collective path (mpiio.Hints.Collector) and the iotrace recorder all
// report per-op counts, bytes and latency through one Collector of
// sharded-atomic counters and fixed-bucket histograms — nil-safe, so an
// uninstrumented stack pays one branch per call. On top of it,
// plfs.Options.AutoTune starts an IOPathTune-style feedback controller
// (internal/plfs/tune) that hill-climbs ReadWorkers, WriteWorkers and
// IndexBatch online from observed throughput within hard ladder
// bounds. `plfsctl stats` dumps a four-layer snapshot; the workload
// CLIs take -stats and -autotune. See README.md ("The telemetry plane
// and online tuning").
//
// The on-disk format is guarded by golden container fixtures for both
// format versions (internal/plfs/testdata/golden), native fuzz targets
// over the dropping parser, index merge and flattened record
// (internal/plfs/index), and differential tests proving single- and
// multi-backend instances — with flattening trusted, disabled, or
// deliberately stale — read byte-identically. See README.md
// ("Multi-backend striped containers", "Format guardrails").
package ldplfs
