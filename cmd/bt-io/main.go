// Command bt-io runs the NAS BT-IO kernel (multi-partition diagonal
// decomposition, five doubles per grid point) over the in-process MPI
// runtime with any access method.
//
//	bt-io -np 4 -grid 24 -steps 5 -method romio
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ldplfs/internal/harness"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/workload"
)

func main() {
	np := flag.Int("np", 4, "number of ranks (must be square)")
	ppn := flag.Int("ppn", 2, "processes per node")
	grid := flag.Int("grid", 24, "grid points per dimension")
	steps := flag.Int("steps", 5, "write timesteps")
	method := flag.String("method", "ldplfs", "access method: mpiio|fuse|romio|ldplfs")
	epio := flag.Bool("epio", false, "epio subtype: N-N write phase, one file per rank (default: collective N-1)")
	backends := flag.Int("backends", 1, "stripe the store over this many backends (hostdirs spread across them; 1 = single backend)")
	indexBatch := flag.Int("index-batch", 0, "PLFS index group-flush threshold in records (0 = default, <0 = flush only on sync)")
	writeWorkers := flag.Int("write-workers", 0, "PLFS parallel pwrites per vectored write (0 = default)")
	stats := flag.Bool("stats", false, "attach the iostats telemetry plane to every layer and dump a snapshot at exit")
	autotune := flag.Bool("autotune", false, "let the PLFS feedback controller adapt ReadWorkers/WriteWorkers/IndexBatch online")
	verify := flag.Bool("verify", true, "read back and verify the final step")
	flag.Parse()

	var plane *iostats.Plane
	if *stats {
		plane = iostats.NewPlane()
	}
	store := harness.NewStoreN(*backends)
	cfg := workload.BTIOConfig{Grid: *grid, Steps: *steps, EPIO: *epio, Hints: mpiio.DefaultHints()}
	popts := plfs.DefaultOptions()
	popts.IndexBatch = *indexBatch
	popts.WriteWorkers = *writeWorkers
	popts.AutoTune = *autotune
	if plane != nil {
		store = harness.Instrument(store, plane)
		cfg.Hints.Collector = plane
		popts.Stats = plane
	}

	start := time.Now()
	var wrote int64
	err := mpi.Run(*np, *ppn, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverForOpts(*method, store, r.Rank(), popts)
		if err != nil {
			panic(err)
		}
		res, err := workload.RunBTIO(r, drv, pathFor("btio.out"), cfg, *verify)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * int64(r.Size())
			fmt.Printf("bt-io: %dx%d process grid, cell width %d\n", res.ProcGrid, res.ProcGrid, res.CellWidth)
		}
	})
	if err != nil {
		if plane != nil {
			// log.Fatal skips defers; a failing run is exactly when the
			// per-layer snapshot matters, so dump it first.
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	subtype := "full"
	if *epio {
		subtype = "epio"
	}
	fmt.Printf("bt-io: method=%s subtype=%s np=%d grid=%d steps=%d wrote=%d bytes in %.3fs (%.1f MB/s)\n",
		*method, subtype, *np, *grid, *steps, wrote, elapsed, float64(wrote)/elapsed/1e6)
	if *verify {
		fmt.Println("verification: OK")
	}
	if plane != nil {
		fmt.Fprint(os.Stderr, plane.Snapshot().String())
	}
}
