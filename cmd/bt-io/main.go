// Command bt-io runs the NAS BT-IO kernel (multi-partition diagonal
// decomposition, five doubles per grid point) over the in-process MPI
// runtime with any access method, or against a plfsd gateway with
// -remote.
//
//	bt-io -np 4 -grid 24 -steps 5 -method romio
//	bt-io -np 4 -remote localhost:7725 -tenant batch
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ldplfs/internal/harness"
	"ldplfs/internal/harness/flags"
	"ldplfs/internal/mpi"
	"ldplfs/internal/workload"
)

func main() {
	var job flags.Job
	var ptune flags.Plfs
	var mio flags.MPIIO
	var remote flags.Remote
	job.Register(flag.CommandLine, 4, "ldplfs")
	ptune.Register(flag.CommandLine)
	mio.Register(flag.CommandLine)
	remote.Register(flag.CommandLine)
	grid := flag.Int("grid", 24, "grid points per dimension")
	steps := flag.Int("steps", 5, "write timesteps")
	epio := flag.Bool("epio", false, "epio subtype: N-N write phase, one file per rank (default: collective N-1)")
	flag.Parse()

	plane := ptune.NewPlane()
	store := harness.NewStoreN(job.Backends)
	cfg := workload.BTIOConfig{Grid: *grid, Steps: *steps, EPIO: *epio, Hints: mio.Hints()}
	if plane != nil {
		store = harness.Instrument(store, plane)
		cfg.Hints.Collector = plane
	}
	popts := ptune.Options(plane)

	start := time.Now()
	var wrote int64
	err := mpi.Run(job.NP, job.PPN, func(r *mpi.Rank) {
		drv, pathFor, err := harness.RankDriver(&remote, job.Method, store, r.Rank(), popts...)
		if err != nil {
			panic(err)
		}
		res, err := workload.RunBTIO(r, drv, pathFor("btio.out"), cfg, job.Verify)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * int64(r.Size())
			fmt.Printf("bt-io: %dx%d process grid, cell width %d\n", res.ProcGrid, res.ProcGrid, res.CellWidth)
		}
	})
	if err != nil {
		if plane != nil {
			// log.Fatal skips defers; a failing run is exactly when the
			// per-layer snapshot matters, so dump it first.
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	subtype := "full"
	if *epio {
		subtype = "epio"
	}
	fmt.Printf("bt-io: method=%s subtype=%s np=%d grid=%d steps=%d wrote=%d bytes in %.3fs (%.1f MB/s)\n",
		job.Method, subtype, job.NP, *grid, *steps, wrote, elapsed, float64(wrote)/elapsed/1e6)
	if job.Verify {
		fmt.Println("verification: OK")
	}
	if plane != nil {
		fmt.Fprint(os.Stderr, plane.Snapshot().String())
	}
}
