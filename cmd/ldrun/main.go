// Command ldrun runs the bundled "unmodified" UNIX tools (cp, cat, grep,
// md5sum, ls) against a real directory tree, optionally with LDPLFS
// preloaded — the executable equivalent of
//
//	LD_PRELOAD=libldplfs.so LDPLFS_MNT=/mnt/plfs=/backend cp ...
//
// Without -preload the tools see raw container directories; with it they
// see PLFS containers as single files and can read and write them. The
// tree lives under -root on the host file system. With -remote the tools
// run against a plfsd gateway instead: the daemon holds the containers
// and the preload decision, and ldrun only speaks the wire protocol.
//
//	ldrun -root /tmp/store -preload -mnt /mnt/plfs=/backend md5sum /mnt/plfs/data
//	ldrun -remote localhost:7725 -tenant ops cat /mnt/plfs/data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ldplfs/internal/core"
	"ldplfs/internal/harness/flags"
	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/unixtools"
)

func main() {
	var ptune flags.Plfs
	var remote flags.Remote
	root := flag.String("root", ".", "host directory backing the tree (canonical backend)")
	backends := flag.String("backends", "", "comma-separated extra host directories to stripe container droppings across (shadow backends)")
	layoutDesc := flag.String("layout", "", "placement layout across the backends: mod-n (default) or replica-R")
	preload := flag.Bool("preload", false, "preload LDPLFS into the symbol table")
	mnt := flag.String("mnt", "/mnt/plfs=/backend", "mount spec (point=backend[,point=backend])")
	pid := flag.Uint("pid", uint(os.Getpid()), "writer id passed to PLFS")
	ptune.Register(flag.CommandLine)
	remote.Register(flag.CommandLine)
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ldrun [flags] {cp SRC DST | cat FILE | grep PAT FILE | md5sum FILE | ls DIR}")
		os.Exit(2)
	}

	var d *posix.Dispatch
	var plane *iostats.Plane
	if remote.Enabled() {
		conn, err := remote.Dial()
		if err != nil {
			log.Fatalf("ldrun: %v", err)
		}
		defer conn.Close()
		d = conn.Dispatch()
	} else {
		osfs, err := posix.NewOSFS(*root)
		if err != nil {
			log.Fatalf("ldrun: root %s: %v", *root, err)
		}
		fs, err := posix.NewStripedRootsLayout(osfs, *backends, *layoutDesc)
		if err != nil {
			log.Fatalf("ldrun: %v", err)
		}
		plane = ptune.NewPlane()
		if plane != nil {
			fs = posix.NewInstrumentFS(fs, plane)
		}
		d = posix.NewDispatch(fs)

		if *preload {
			mounts, err := core.ParseMounts(*mnt)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := core.Preload(d, core.Config{
				Mounts: mounts,
				Pid:    uint32(*pid),
				Plfs:   plfs.New(fs, ptune.Options(plane)...),
			}); err != nil {
				log.Fatalf("ldrun: preload: %v", err)
			}
		}
	}
	// The snapshot must survive failing commands too — that is when an
	// operator most wants the per-layer picture — so the fatal paths
	// below dump before exiting (log.Fatal skips deferred functions).
	dumpStats := func() {
		if plane != nil {
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
	}
	defer dumpStats()
	fatal := func(v ...any) {
		dumpStats() // log.Fatal exits without running defers
		log.Fatal(v...)
	}

	switch args[0] {
	case "cp":
		if len(args) != 3 {
			fatal("ldrun: cp SRC DST")
		}
		n, err := unixtools.Cp(d, args[1], args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("copied %d bytes\n", n)
	case "cat":
		if len(args) != 2 {
			fatal("ldrun: cat FILE")
		}
		if _, err := unixtools.Cat(d, args[1], os.Stdout); err != nil {
			fatal(err)
		}
	case "grep":
		if len(args) != 3 {
			fatal("ldrun: grep PATTERN FILE")
		}
		matches, err := unixtools.Grep(d, args[1], args[2])
		if err != nil {
			fatal(err)
		}
		for _, m := range matches {
			fmt.Printf("%d:%s\n", m.LineNo, m.Line)
		}
	case "md5sum":
		if len(args) != 2 {
			fatal("ldrun: md5sum FILE")
		}
		sum, err := unixtools.Md5sum(d, args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s  %s\n", sum, args[1])
	case "ls":
		if len(args) != 2 {
			fatal("ldrun: ls DIR")
		}
		names, err := unixtools.Ls(d, args[1])
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	default:
		fatal(fmt.Sprintf("ldrun: unknown tool %q", args[0]))
	}
}
