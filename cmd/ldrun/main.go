// Command ldrun runs the bundled "unmodified" UNIX tools (cp, cat, grep,
// md5sum, ls) against a real directory tree, optionally with LDPLFS
// preloaded — the executable equivalent of
//
//	LD_PRELOAD=libldplfs.so LDPLFS_MNT=/mnt/plfs=/backend cp ...
//
// Without -preload the tools see raw container directories; with it they
// see PLFS containers as single files and can read and write them. The
// tree lives under -root on the host file system.
//
//	ldrun -root /tmp/store -preload -mnt /mnt/plfs=/backend md5sum /mnt/plfs/data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ldplfs/internal/core"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/unixtools"
)

func main() {
	root := flag.String("root", ".", "host directory backing the tree (canonical backend)")
	backends := flag.String("backends", "", "comma-separated extra host directories to stripe container droppings across (shadow backends)")
	preload := flag.Bool("preload", false, "preload LDPLFS into the symbol table")
	mnt := flag.String("mnt", "/mnt/plfs=/backend", "mount spec (point=backend[,point=backend])")
	pid := flag.Uint("pid", uint(os.Getpid()), "writer id passed to PLFS")
	indexBatch := flag.Int("index-batch", 0, "PLFS index group-flush threshold in records (0 = default, <0 = flush only on sync)")
	writeWorkers := flag.Int("write-workers", 0, "PLFS parallel pwrites per vectored write (0 = default)")
	readWorkers := flag.Int("read-workers", 0, "PLFS parallel preads per scatter-gather read (0 = default)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ldrun [flags] {cp SRC DST | cat FILE | grep PAT FILE | md5sum FILE | ls DIR}")
		os.Exit(2)
	}

	osfs, err := posix.NewOSFS(*root)
	if err != nil {
		log.Fatalf("ldrun: root %s: %v", *root, err)
	}
	fs, err := posix.NewStripedRoots(osfs, *backends)
	if err != nil {
		log.Fatalf("ldrun: %v", err)
	}
	d := posix.NewDispatch(fs)

	if *preload {
		mounts, err := core.ParseMounts(*mnt)
		if err != nil {
			log.Fatal(err)
		}
		popts := plfs.DefaultOptions()
		popts.IndexBatch = *indexBatch
		popts.WriteWorkers = *writeWorkers
		popts.ReadWorkers = *readWorkers
		if _, err := core.Preload(d, core.Config{Mounts: mounts, Pid: uint32(*pid), PlfsOptions: popts}); err != nil {
			log.Fatalf("ldrun: preload: %v", err)
		}
	}

	switch args[0] {
	case "cp":
		if len(args) != 3 {
			log.Fatal("ldrun: cp SRC DST")
		}
		n, err := unixtools.Cp(d, args[1], args[2])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("copied %d bytes\n", n)
	case "cat":
		if len(args) != 2 {
			log.Fatal("ldrun: cat FILE")
		}
		if _, err := unixtools.Cat(d, args[1], os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "grep":
		if len(args) != 3 {
			log.Fatal("ldrun: grep PATTERN FILE")
		}
		matches, err := unixtools.Grep(d, args[1], args[2])
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			fmt.Printf("%d:%s\n", m.LineNo, m.Line)
		}
	case "md5sum":
		if len(args) != 2 {
			log.Fatal("ldrun: md5sum FILE")
		}
		sum, err := unixtools.Md5sum(d, args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  %s\n", sum, args[1])
	case "ls":
		if len(args) != 2 {
			log.Fatal("ldrun: ls DIR")
		}
		names, err := unixtools.Ls(d, args[1])
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	default:
		log.Fatalf("ldrun: unknown tool %q", args[0])
	}
}
