package main

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ldplfs/internal/posix"
	"ldplfs/internal/service/client"
)

// TestDaemonSmoke boots plfsd in-process on an ephemeral port and
// drives it with three concurrent clients across two tenants — the CI
// e2e smoke.
func TestDaemonSmoke(t *testing.T) {
	ready := make(chan string, 1)
	var stdout, stderr bytes.Buffer
	go runNotify([]string{
		"-listen", "127.0.0.1:0",
		"-tenants", "gold:0:2,batch:1:1",
	}, &stdout, &stderr, ready)
	addr := <-ready

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		tenant := "gold"
		if i == 2 {
			tenant = "batch"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, tenant)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			path := fmt.Sprintf("/mnt/plfs/smoke%d", i)
			payload := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			fd, err := c.Open(path, posix.O_CREAT|posix.O_RDWR, 0o644)
			if err != nil {
				errs <- err
				return
			}
			if _, err := c.Pwrite(fd, payload, 0); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(payload))
			if _, err := c.Pread(fd, got, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("client %d read-back mismatch", i)
				return
			}
			if err := c.CloseFd(fd); err != nil {
				errs <- err
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := client.Dial(addr, "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "tenant:gold") {
		t.Fatalf("stats missing tenant layer:\n%s", stats)
	}
	if !strings.Contains(stdout.String(), "listening on") {
		t.Fatalf("banner missing: %q", stdout.String())
	}
}

func TestParseTenants(t *testing.T) {
	tcs, err := parseTenants("gold:0:2,batch:1:1:1048576:524288, ops:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 3 {
		t.Fatalf("parsed %d tenants", len(tcs))
	}
	if tcs[0].Name != "gold" || tcs[0].Priority != 0 || tcs[0].Weight != 2 {
		t.Fatalf("gold = %+v", tcs[0])
	}
	if tcs[1].ReadBytesPerSec != 1048576 || tcs[1].WriteBytesPerSec != 524288 {
		t.Fatalf("batch = %+v", tcs[1])
	}
	if tcs[2].Weight != 1 {
		t.Fatalf("ops default weight = %d", tcs[2].Weight)
	}
	for _, bad := range []string{"", ":1", "a:b", "a:1:2:3:4:5"} {
		if _, err := parseTenants(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-tenants", ""}, &out, &out); code == 0 {
		t.Fatal("empty tenants accepted")
	}
	if code := run([]string{"-nosuchflag"}, &out, &out); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}
