// Command plfsd is the multi-tenant PLFS gateway daemon: it mounts
// container trees over a backing store and serves concurrent clients
// over the length-prefixed wire protocol of internal/service, with
// per-tenant QoS (token-bucket rate caps, priority admission) enforced
// in the data path and per-tenant telemetry on the iostats plane.
//
//	plfsd -listen :7725 -root /tmp/store
//	plfsd -listen :7725 -root /tmp/store -backends /tmp/b1,/tmp/b2 \
//	      -tenants 'gold:0:2,batch:1:1:8388608' -governor
//
// Tenant specs are name:priority[:weight[:readBps[:writeBps]]], comma
// separated; priority 0 is served strictly first under contention and
// byte rates are token-bucket caps (0 = unlimited). Without -tenants a
// single unlimited tenant "default" is declared. Clients (the workload
// CLIs with -remote, or plfsctl -remote stats/doctor) name their
// tenant in the connection hello.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"

	"ldplfs/internal/core"
	"ldplfs/internal/posix"
	"ldplfs/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one plfsd invocation — split from main so the e2e tests
// can drive the daemon in-process. When ready is non-nil it receives
// the bound listener address once accepting.
func run(argv []string, stdout, stderr io.Writer) int {
	return runNotify(argv, stdout, stderr, nil)
}

func runNotify(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	fl := flag.NewFlagSet("plfsd", flag.ContinueOnError)
	fl.SetOutput(stderr)
	listen := fl.String("listen", "127.0.0.1:7725", "address to listen on")
	root := fl.String("root", "", "host directory backing the store (empty = in-memory store)")
	backends := fl.String("backends", "", "comma-separated extra host directories the containers' droppings stripe across")
	mnt := fl.String("mnt", "/mnt/plfs=/backend", "mount spec (point=backend[,point=backend])")
	tenants := fl.String("tenants", "default:0", "tenant specs name:priority[:weight[:readBps[:writeBps]]], comma separated")
	inflight := fl.Int("inflight", 64, "concurrently executing operations across all tenants")
	governor := fl.Bool("governor", false, "enable the QoS governor: throttle background tenants when priority-0 demand rises")
	if err := fl.Parse(argv); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "plfsd: "+format+"\n", a...)
		return 1
	}

	store, err := buildStore(*root, *backends)
	if err != nil {
		return fail("%v", err)
	}
	mounts, err := core.ParseMounts(*mnt)
	if err != nil {
		return fail("%v", err)
	}
	tcs, err := parseTenants(*tenants)
	if err != nil {
		return fail("%v", err)
	}

	g, err := service.NewGateway(service.Config{
		Backend:     store,
		Mounts:      mounts,
		Tenants:     tcs,
		MaxInflight: *inflight,
		Governor:    service.GovernorConfig{Enable: *governor},
	})
	if err != nil {
		return fail("%v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail("listen %s: %v", *listen, err)
	}
	fmt.Fprintf(stdout, "plfsd: listening on %s (%d tenants, inflight %d)\n", ln.Addr(), len(tcs), *inflight)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	srv := service.NewServer(g)
	if err := srv.Serve(ln); err != nil {
		// Serve always exits with the listener's close error; a torn
		// down listener is the normal shutdown path.
		fmt.Fprintf(stderr, "plfsd: %v\n", err)
	}
	return 0
}

// buildStore assembles the backing FS: OS-backed (optionally striped
// over extra roots) or a fresh in-memory store for demos and tests.
func buildStore(root, backends string) (posix.FS, error) {
	if root == "" {
		mem := posix.NewMemFS()
		if err := mem.Mkdir("/backend", 0o755); err != nil {
			return nil, err
		}
		return mem, nil
	}
	osfs, err := posix.NewOSFS(root)
	if err != nil {
		return nil, fmt.Errorf("root %s: %w", root, err)
	}
	return posix.NewStripedRoots(osfs, backends)
}

// parseTenants decodes the -tenants spec.
func parseTenants(spec string) ([]service.TenantConfig, error) {
	var out []service.TenantConfig
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		parts := strings.Split(s, ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("tenant spec %q has no name", s)
		}
		tc := service.TenantConfig{Name: parts[0], Weight: 1}
		fields := []*int64{nil, nil, nil, nil}
		var pri, weight int64
		var rd, wr int64
		fields[0], fields[1], fields[2], fields[3] = &pri, &weight, &rd, &wr
		for i, p := range parts[1:] {
			if i >= len(fields) {
				return nil, fmt.Errorf("tenant spec %q has too many fields", s)
			}
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant spec %q: %w", s, err)
			}
			*fields[i] = v
		}
		tc.Priority = int(pri)
		if weight > 0 {
			tc.Weight = int(weight)
		}
		tc.ReadBytesPerSec = rd
		tc.WriteBytesPerSec = wr
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants declared")
	}
	return out, nil
}
