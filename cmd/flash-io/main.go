// Command flash-io runs the FLASH-IO checkpoint kernel (three HDF5-style
// files: checkpoint, plotfile, corner plotfile) over the in-process MPI
// runtime with any access method, or against a plfsd gateway with
// -remote.
//
//	flash-io -np 4 -nxb 8 -nblocks 4 -nvars 8 -method ldplfs
//	flash-io -np 4 -remote localhost:7725 -tenant batch
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ldplfs/internal/harness"
	"ldplfs/internal/harness/flags"
	"ldplfs/internal/mpi"
	"ldplfs/internal/workload"
)

func main() {
	var job flags.Job
	var ptune flags.Plfs
	var mio flags.MPIIO
	var remote flags.Remote
	job.Register(flag.CommandLine, 4, "ldplfs")
	ptune.Register(flag.CommandLine)
	mio.Register(flag.CommandLine)
	remote.Register(flag.CommandLine)
	nxb := flag.Int("nxb", 8, "cells per block dimension (paper: 24)")
	nblocks := flag.Int("nblocks", 4, "blocks per process (FLASH default: 80)")
	nvars := flag.Int("nvars", 8, "unknowns per cell (FLASH: 24)")
	split := flag.Bool("split", false, "split checkpoints: N-N write phase, one file triplet per rank (default: shared N-1)")
	flag.Parse()

	plane := ptune.NewPlane()
	store := harness.NewStoreN(job.Backends)
	cfg := workload.FlashIOConfig{NXB: *nxb, NBlocks: *nblocks, NVars: *nvars, SplitFiles: *split, Hints: mio.Hints()}
	fmt.Printf("flash-io: ~%.1f MB per process\n", float64(cfg.BytesPerProcess())/1e6)
	if plane != nil {
		store = harness.Instrument(store, plane)
		cfg.Hints.Collector = plane
	}
	popts := ptune.Options(plane)

	start := time.Now()
	var wrote int64
	err := mpi.Run(job.NP, job.PPN, func(r *mpi.Rank) {
		drv, pathFor, err := harness.RankDriver(&remote, job.Method, store, r.Rank(), popts...)
		if err != nil {
			panic(err)
		}
		res, err := workload.RunFlashIO(r, drv, pathFor("flash"), cfg)
		if err != nil {
			panic(err)
		}
		if job.Verify {
			for i, f := range res.Files {
				if err := workload.VerifyFlashFile(r, drv, f, cfg, i); err != nil {
					panic(err)
				}
			}
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * int64(r.Size())
		}
	})
	if err != nil {
		if plane != nil {
			// log.Fatal skips defers; a failing run is exactly when the
			// per-layer snapshot matters, so dump it first.
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("flash-io: method=%s np=%d wrote=%d bytes across 3 files in %.3fs (%.1f MB/s)\n",
		job.Method, job.NP, wrote, elapsed, float64(wrote)/elapsed/1e6)
	if job.Verify {
		fmt.Println("verification: OK (all three files)")
	}
	if plane != nil {
		fmt.Fprint(os.Stderr, plane.Snapshot().String())
	}
}
