// Command flash-io runs the FLASH-IO checkpoint kernel (three HDF5-style
// files: checkpoint, plotfile, corner plotfile) over the in-process MPI
// runtime with any access method.
//
//	flash-io -np 4 -nxb 8 -nblocks 4 -nvars 8 -method ldplfs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ldplfs/internal/harness"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/workload"
)

func main() {
	np := flag.Int("np", 4, "number of ranks")
	ppn := flag.Int("ppn", 2, "processes per node")
	nxb := flag.Int("nxb", 8, "cells per block dimension (paper: 24)")
	nblocks := flag.Int("nblocks", 4, "blocks per process (FLASH default: 80)")
	nvars := flag.Int("nvars", 8, "unknowns per cell (FLASH: 24)")
	method := flag.String("method", "ldplfs", "access method: mpiio|fuse|romio|ldplfs")
	split := flag.Bool("split", false, "split checkpoints: N-N write phase, one file triplet per rank (default: shared N-1)")
	backends := flag.Int("backends", 1, "stripe the store over this many backends (hostdirs spread across them; 1 = single backend)")
	indexBatch := flag.Int("index-batch", 0, "PLFS index group-flush threshold in records (0 = default, <0 = flush only on sync)")
	writeWorkers := flag.Int("write-workers", 0, "PLFS parallel pwrites per vectored write (0 = default)")
	stats := flag.Bool("stats", false, "attach the iostats telemetry plane to every layer and dump a snapshot at exit")
	autotune := flag.Bool("autotune", false, "let the PLFS feedback controller adapt ReadWorkers/WriteWorkers/IndexBatch online")
	verify := flag.Bool("verify", true, "read back and verify all files")
	flag.Parse()

	var plane *iostats.Plane
	if *stats {
		plane = iostats.NewPlane()
	}
	store := harness.NewStoreN(*backends)
	cfg := workload.FlashIOConfig{NXB: *nxb, NBlocks: *nblocks, NVars: *nvars, SplitFiles: *split, Hints: mpiio.DefaultHints()}
	fmt.Printf("flash-io: ~%.1f MB per process\n", float64(cfg.BytesPerProcess())/1e6)
	popts := plfs.DefaultOptions()
	popts.IndexBatch = *indexBatch
	popts.WriteWorkers = *writeWorkers
	popts.AutoTune = *autotune
	if plane != nil {
		store = harness.Instrument(store, plane)
		cfg.Hints.Collector = plane
		popts.Stats = plane
	}

	start := time.Now()
	var wrote int64
	err := mpi.Run(*np, *ppn, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverForOpts(*method, store, r.Rank(), popts)
		if err != nil {
			panic(err)
		}
		res, err := workload.RunFlashIO(r, drv, pathFor("flash"), cfg)
		if err != nil {
			panic(err)
		}
		if *verify {
			for i, f := range res.Files {
				if err := workload.VerifyFlashFile(r, drv, f, cfg, i); err != nil {
					panic(err)
				}
			}
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * int64(r.Size())
		}
	})
	if err != nil {
		if plane != nil {
			// log.Fatal skips defers; a failing run is exactly when the
			// per-layer snapshot matters, so dump it first.
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("flash-io: method=%s np=%d wrote=%d bytes across 3 files in %.3fs (%.1f MB/s)\n",
		*method, *np, wrote, elapsed, float64(wrote)/elapsed/1e6)
	if *verify {
		fmt.Println("verification: OK (all three files)")
	}
	if plane != nil {
		fmt.Fprint(os.Stderr, plane.Snapshot().String())
	}
}
