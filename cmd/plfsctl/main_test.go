package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// exec drives one in-process plfsctl invocation.
func exec(t *testing.T, argv ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(argv, &out, &errb)
	return code, out.String() + errb.String()
}

// TestStatsCoversAllLayers is the acceptance check for the telemetry
// plane's CLI surface: one `plfsctl stats` run must produce a snapshot
// with per-layer sections for all four instrumented stages — the posix
// backend, the plfs engines, the shared read caches and the MPI-IO
// collective path — with real traffic recorded in each.
func TestStatsCoversAllLayers(t *testing.T) {
	code, out := exec(t, "stats")
	if code != 0 {
		t.Fatalf("stats exited %d:\n%s", code, out)
	}
	for _, layer := range []string{"layer posix", "layer plfs", "layer readcache", "layer mpiio"} {
		if !strings.Contains(out, layer) {
			t.Errorf("snapshot missing %q:\n%s", layer, out)
		}
	}
	// Each layer carries substance, not just a heading: backend and
	// engine bytes, cache lookups, collective calls.
	for _, want := range []string{"bytes", "lookups = ", "collective_calls = "} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
}

// TestDoctorAcrossBackends is the end-to-end multi-backend doctor
// scenario: a container whose droppings span three host directories, one
// openhosts record whose writer lives on a shadow backend (live — the
// liveness probe must consult that backend, not just the canonical
// root), and one whose writer state is gone (stale — doctor flags it and
// -fix scrubs it).
func TestDoctorAcrossBackends(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	backendFlags := []string{
		"-root", roots[0],
		"-backends", roots[1] + "," + roots[2],
		"-hostdirs", "6",
	}

	// Write a container through the same striped backend list the tool
	// will be pointed at.
	var stores []posix.FS
	for _, r := range roots {
		osfs, err := posix.NewOSFS(r)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, osfs)
	}
	p := plfs.New(nil, plfs.Options{NumHostdirs: 6, Backends: stores})
	f, err := p.Open("/data", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// pid 0 -> hostdir.0 -> canonical; pid 1 -> hostdir.1 -> shadow 1;
	// pid 2 -> hostdir.2 -> shadow 2.
	for pid := uint32(0); pid < 3; pid++ {
		if _, err := f.Write(bytes.Repeat([]byte{byte(pid + 1)}, 256), int64(pid)*256, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 3; pid++ {
		if err := f.Close(pid); err != nil {
			t.Fatal(err)
		}
	}

	// Forge crash leftovers in the canonical openhosts dir: pid 1's
	// dropping survives on shadow backend 1 (live record), pid 4 has no
	// dropping anywhere (stale record).
	for _, name := range []string{"host.1", "host.4"} {
		if err := os.WriteFile(filepath.Join(roots[0], "data", "openhosts", name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// info reports the striped layout.
	code, out := exec(t, append(backendFlags, "info", "/data")...)
	if code != 0 {
		t.Fatalf("info exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "logical size: 768 bytes") {
		t.Fatalf("info missing size:\n%s", out)
	}
	if !strings.Contains(out, "backends:     3") {
		t.Fatalf("info missing backend spread:\n%s", out)
	}

	// doctor flags exactly the stale record and exits nonzero.
	code, out = exec(t, append(backendFlags, "doctor", "/data")...)
	if code != 1 {
		t.Fatalf("doctor exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "stale openhosts record: pid 4") {
		t.Fatalf("doctor did not flag pid 4:\n%s", out)
	}
	if strings.Contains(out, "stale openhosts record: pid 1") {
		t.Fatalf("doctor flagged live shadow-backend writer pid 1:\n%s", out)
	}
	if !strings.Contains(out, "(1 live, 1 stale)") {
		t.Fatalf("doctor counts wrong:\n%s", out)
	}

	// Pointed at the canonical root alone, the tool cannot see shadow
	// droppings — the live pid-1 record would be misdiagnosed. The
	// backend list is part of the container's identity.
	code, out = exec(t, "-root", roots[0], "-hostdirs", "6", "doctor", "/data")
	if code != 1 || !strings.Contains(out, "stale openhosts record: pid 1") {
		t.Fatalf("single-root doctor should misdiagnose pid 1 (exit %d):\n%s", code, out)
	}

	// -fix scrubs the stale record and only it.
	code, out = exec(t, append(backendFlags, "-fix", "doctor", "/data")...)
	if code != 0 {
		t.Fatalf("doctor -fix exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "removed 1 stale records") {
		t.Fatalf("doctor -fix did not scrub:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(roots[0], "data", "openhosts", "host.1")); err != nil {
		t.Fatalf("live record scrubbed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(roots[0], "data", "openhosts", "host.4")); !os.IsNotExist(err) {
		t.Fatalf("stale record survived: %v", err)
	}

	// A clean container passes doctor with exit 0.
	code, out = exec(t, append(backendFlags, "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "(1 live, 0 stale)") {
		t.Fatalf("post-fix doctor exit %d:\n%s", code, out)
	}
}

// TestCtlCommandsAcrossBackends covers the remaining subcommands over a
// striped container: index dump, compact, flatten, rm.
func TestCtlCommandsAcrossBackends(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	backendFlags := []string{
		"-root", roots[0],
		"-backends", roots[1] + "," + roots[2],
		"-hostdirs", "6",
	}
	var stores []posix.FS
	for _, r := range roots {
		osfs, err := posix.NewOSFS(r)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, osfs)
	}
	p := plfs.New(nil, plfs.Options{NumHostdirs: 6, Backends: stores})
	f, err := p.Open("/data", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 4; pid++ {
		if _, err := f.Write(bytes.Repeat([]byte{'a' + byte(pid)}, 128), int64(pid)*128, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 4; pid++ {
		f.Close(pid)
	}

	code, out := exec(t, append(backendFlags, "index", "/data")...)
	if code != 0 || !strings.Contains(out, "384") { // extent at logical 384
		t.Fatalf("index exit %d:\n%s", code, out)
	}
	code, out = exec(t, append(backendFlags, "compact", "/data")...)
	if code != 0 || !strings.Contains(out, "4 -> 1 index droppings") {
		t.Fatalf("compact exit %d:\n%s", code, out)
	}
	code, out = exec(t, append(backendFlags, "flatten", "/data", "/data.flat")...)
	if code != 0 || !strings.Contains(out, "(512 bytes)") {
		t.Fatalf("flatten exit %d:\n%s", code, out)
	}
	flat, err := os.ReadFile(filepath.Join(roots[0], "data.flat"))
	if err != nil || len(flat) != 512 {
		t.Fatalf("flat file: %d bytes, %v", len(flat), err)
	}
	for pid := 0; pid < 4; pid++ {
		for i := 0; i < 128; i++ {
			if flat[pid*128+i] != 'a'+byte(pid) {
				t.Fatalf("flat byte %d = %q", pid*128+i, flat[pid*128+i])
			}
		}
	}
	code, out = exec(t, append(backendFlags, "rm", "/data")...)
	if code != 0 {
		t.Fatalf("rm exit %d:\n%s", code, out)
	}
	for i, r := range roots {
		if _, err := os.Stat(filepath.Join(r, "data")); !os.IsNotExist(err) {
			t.Fatalf("container survived rm on backend %d: %v", i, err)
		}
	}
}

// TestDoctorIndexHealth covers the flattened-index half of doctor: a
// fresh record is reported and left strictly alone by -fix; a stale one
// is reported, demotes nothing, and -fix refreshes it in place (no live
// writers) to a new generation.
func TestDoctorIndexHealth(t *testing.T) {
	root := t.TempDir()
	osfs, err := posix.NewOSFS(root)
	if err != nil {
		t.Fatal(err)
	}
	p := plfs.New(osfs, plfs.Options{NumHostdirs: 4})
	f, err := p.Open("/data", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 3; pid++ {
		if _, err := f.Write(bytes.Repeat([]byte{byte(pid + 1)}, 100), int64(pid)*100, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 3; pid++ {
		if err := f.Close(pid); err != nil {
			t.Fatal(err)
		}
	}
	flags := []string{"-root", root, "-hostdirs", "4"}

	// Clean close wrote gen 1; doctor reports it fresh.
	code, out := exec(t, append(flags, "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "index: 3 droppings") || !strings.Contains(out, "flattened index: gen 1, 3 extents, fresh") {
		t.Fatalf("doctor exit %d:\n%s", code, out)
	}

	// -fix must leave a fresh record alone.
	recordPath := filepath.Join(root, "data", "index.flattened.1")
	before, err := os.ReadFile(recordPath)
	if err != nil {
		t.Fatal(err)
	}
	code, out = exec(t, append(flags, "-fix", "doctor", "/data")...)
	if code != 0 || strings.Contains(out, "refreshed") || strings.Contains(out, "removed") {
		t.Fatalf("doctor -fix touched a fresh record (exit %d):\n%s", code, out)
	}
	after, err := os.ReadFile(recordPath)
	if err != nil || !bytes.Equal(before, after) {
		t.Fatalf("fresh flattened record mutated by -fix: %v", err)
	}

	// Stage staleness: newer raw droppings behind the record's back.
	stale := plfs.New(osfs, plfs.Options{NumHostdirs: 4, DisableAutoFlatten: true})
	g, err := stale.Open("/data", posix.O_WRONLY, 7, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("newer"), 300, 7); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(7); err != nil {
		t.Fatal(err)
	}
	code, out = exec(t, append(flags, "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "flattened index: gen 1 STALE") {
		t.Fatalf("doctor on stale record exit %d:\n%s", code, out)
	}

	// -fix refreshes in place: gen 2, fresh again, and reads still serve
	// the post-staleness bytes.
	code, out = exec(t, append(flags, "-fix", "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "refreshed flattened index to gen 2") {
		t.Fatalf("doctor -fix exit %d:\n%s", code, out)
	}
	code, out = exec(t, append(flags, "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "flattened index: gen 2, 4 extents, fresh") {
		t.Fatalf("post-refresh doctor exit %d:\n%s", code, out)
	}
	code, out = exec(t, append(flags, "info", "/data")...)
	if code != 0 || !strings.Contains(out, "logical size: 305 bytes") || !strings.Contains(out, "flattened:    gen 2") {
		t.Fatalf("info exit %d:\n%s", code, out)
	}
}

// TestCompactWritesFlattened: the compact subcommand both consolidates
// raw droppings and publishes the flattened record.
func TestCompactWritesFlattened(t *testing.T) {
	root := t.TempDir()
	osfs, err := posix.NewOSFS(root)
	if err != nil {
		t.Fatal(err)
	}
	p := plfs.New(osfs, plfs.Options{NumHostdirs: 4, DisableAutoFlatten: true})
	f, err := p.Open("/data", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 4; pid++ {
		if _, err := f.Write(bytes.Repeat([]byte{'a' + byte(pid)}, 64), int64(pid)*64, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 4; pid++ {
		f.Close(pid)
	}
	flags := []string{"-root", root, "-hostdirs", "4"}
	code, out := exec(t, append(flags, "compact", "/data")...)
	if code != 0 || !strings.Contains(out, "4 -> 1 index droppings") || !strings.Contains(out, "flattened index: gen 1, 4 extents") {
		t.Fatalf("compact exit %d:\n%s", code, out)
	}
	if _, err := os.Stat(filepath.Join(root, "data", "index.flattened.1")); err != nil {
		t.Fatalf("compact did not publish the flattened record: %v", err)
	}
}

// TestDoctorFixOrdersOpenhostsBeforeFlattened is the regression test
// for the classic degraded container: a flattened record that looks
// stale only because dead writers' openhosts records linger. One -fix
// run must scrub the openhosts leftovers first and then recognise the
// record as fresh again — not delete it with a "writers are live"
// excuse.
func TestDoctorFixOrdersOpenhostsBeforeFlattened(t *testing.T) {
	root := t.TempDir()
	osfs, err := posix.NewOSFS(root)
	if err != nil {
		t.Fatal(err)
	}
	p := plfs.New(osfs, plfs.Options{NumHostdirs: 4})
	f, err := p.Open("/data", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{7}, 256), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(1); err != nil {
		t.Fatal(err)
	}
	// Forge a dead writer's leftover: pid 9 has no dropping anywhere.
	if err := os.WriteFile(filepath.Join(root, "data", "openhosts", "host.9"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	flags := []string{"-root", root, "-hostdirs", "4"}

	// Without -fix: degraded, and the record reads as stale (pinned by
	// the forged openhosts record).
	code, out := exec(t, append(flags, "doctor", "/data")...)
	if code != 1 || !strings.Contains(out, "flattened index: gen 1 STALE") {
		t.Fatalf("doctor exit %d:\n%s", code, out)
	}

	// One -fix run: scrub, then the record is fresh again — untouched.
	code, out = exec(t, append(flags, "-fix", "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "removed 1 stale records") {
		t.Fatalf("doctor -fix exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "stale flattened record") || strings.Contains(out, "refreshed flattened") {
		t.Fatalf("-fix touched a record that was only pinned by dead openhosts:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(root, "data", "index.flattened.1")); err != nil {
		t.Fatalf("flattened record deleted by -fix: %v", err)
	}
	code, out = exec(t, append(flags, "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "flattened index: gen 1, 1 extents, fresh") {
		t.Fatalf("post-fix doctor exit %d:\n%s", code, out)
	}
}

// replicaPlfs builds a plfs instance over the given host roots under a
// replica-2 layout — the writer side of the doctor replication tests.
func replicaPlfs(t *testing.T, roots []string) *plfs.FS {
	t.Helper()
	backends := make([]posix.FS, len(roots))
	for i, r := range roots {
		osfs, err := posix.NewOSFS(r)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = osfs
	}
	layout, err := posix.LayoutFor("replica-2", len(roots))
	if err != nil {
		t.Fatal(err)
	}
	striped := posix.NewLayoutFS(layout, posix.ReplicaOptions{}, backends...)
	return plfs.New(striped, plfs.Options{NumHostdirs: 6})
}

// findReplicatedDropping walks the host roots for a data dropping that
// exists on exactly two of them, returning its container-relative path
// and the roots holding a copy.
func findReplicatedDropping(t *testing.T, roots []string, container string) (string, []string) {
	t.Helper()
	copies := map[string][]string{}
	for _, root := range roots {
		matches, err := filepath.Glob(filepath.Join(root, container, "hostdir.*", "dropping.data.*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			rel, err := filepath.Rel(filepath.Join(root, container), m)
			if err != nil {
				t.Fatal(err)
			}
			copies[rel] = append(copies[rel], root)
		}
	}
	for rel, owners := range copies {
		if len(owners) == 2 {
			return rel, owners
		}
	}
	t.Fatal("no 2-copy data dropping found")
	return "", nil
}

// TestDoctorReplication drives the replication side of doctor end to
// end over real directory trees: a healthy replica-2 container reports
// clean; a deleted copy is reported as under-replicated and doctor
// exits 1 without -fix; -fix re-replicates and a re-run is clean (and
// idempotent); a truncated copy is DIVERGED, refused by plain -fix
// (exit 1), and rebuilt only under -fix -force.
func TestDoctorReplication(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	flags := []string{
		"-root", roots[0],
		"-backends", roots[1] + "," + roots[2],
		"-layout", "replica-2",
		"-hostdirs", "6",
	}

	p := replicaPlfs(t, roots)
	f, err := p.Open("/data", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 3; pid++ {
		if _, err := f.Write(bytes.Repeat([]byte{byte(pid + 1)}, 512), int64(pid)*512, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 3; pid++ {
		if err := f.Close(pid); err != nil {
			t.Fatal(err)
		}
	}

	// info reports the persisted layout; remember the healthy summary.
	code, out := exec(t, append(flags, "info", "/data")...)
	if code != 0 || !strings.Contains(out, "layout:       replica-2") {
		t.Fatalf("info exit %d:\n%s", code, out)
	}
	healthySize := out

	// Healthy container: doctor is clean and exits 0.
	code, out = exec(t, append(flags, "doctor", "/data")...)
	if code != 0 {
		t.Fatalf("doctor on healthy container exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "replication: replica-2") ||
		!strings.Contains(out, "0 under-replicated, 0 diverged") {
		t.Fatalf("healthy replication report wrong:\n%s", out)
	}

	// Delete one copy: under-replication, doctor refuses silently fixing.
	rel, owners := findReplicatedDropping(t, roots, "data")
	if err := os.Remove(filepath.Join(owners[1], "data", rel)); err != nil {
		t.Fatal(err)
	}
	code, out = exec(t, append(flags, "doctor", "/data")...)
	if code != 1 {
		t.Fatalf("doctor on under-replicated container exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "1 under-replicated") ||
		!strings.Contains(out, "under-replicated (want 2 copies:") ||
		!strings.Contains(out, "re-run with -fix") {
		t.Fatalf("under-replication report wrong:\n%s", out)
	}

	// -fix re-replicates and restores full redundancy. Flags are also
	// accepted after the subcommand — the order a user naturally types.
	code, out = exec(t, append(flags, "doctor", "-fix", "/data")...)
	if code != 0 || !strings.Contains(out, "replication restored") {
		t.Fatalf("doctor -fix exit %d:\n%s", code, out)
	}
	if _, err := os.Stat(filepath.Join(owners[1], "data", rel)); err != nil {
		t.Fatalf("copy not rebuilt: %v", err)
	}
	// Idempotence: a second -fix pass has nothing to repair.
	code, out = exec(t, append(flags, "-fix", "doctor", "/data")...)
	if code != 0 || !strings.Contains(out, "0 under-replicated, 0 diverged") {
		t.Fatalf("doctor -fix not idempotent, exit %d:\n%s", code, out)
	}

	// Divergence: truncate one copy. Plain -fix must refuse it.
	full := filepath.Join(owners[0], "data", rel)
	st, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(full, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	code, out = exec(t, append(flags, "-fix", "doctor", "/data")...)
	if code != 1 {
		t.Fatalf("doctor -fix on diverged container exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "DIVERGED") || !strings.Contains(out, "skipped 1 diverged") ||
		!strings.Contains(out, "-fix -force") {
		t.Fatalf("divergence report wrong:\n%s", out)
	}
	if got, err := os.Stat(full); err != nil || got.Size() != st.Size()/2 {
		t.Fatalf("plain -fix touched a diverged copy: %v, %v", got, err)
	}

	// -fix -force rebuilds the short copy from the longest one.
	code, out = exec(t, append(flags, "doctor", "-fix", "-force", "/data")...)
	if code != 0 || !strings.Contains(out, "replication restored") {
		t.Fatalf("doctor -fix -force exit %d:\n%s", code, out)
	}
	if got, err := os.Stat(full); err != nil || got.Size() != st.Size() {
		t.Fatalf("forced repair did not rebuild the copy: %v, %v", got, err)
	}

	// The logical container is unchanged by the whole heal cycle.
	code, out = exec(t, append(flags, "info", "/data")...)
	if code != 0 || out != healthySize {
		t.Fatalf("info changed across heal cycle (exit %d):\n-- before --\n%s\n-- after --\n%s", code, healthySize, out)
	}
}

// TestDoctorLayoutFlagValidation pins the CLI-side layout validation:
// a replica layout without backends, or wider than the backend list,
// is a usage error before any filesystem work happens.
func TestDoctorLayoutFlagValidation(t *testing.T) {
	root := t.TempDir()
	code, out := exec(t, "-root", root, "-layout", "replica-2", "doctor", "/data")
	if code != 1 || !strings.Contains(out, "needs 2 backends") {
		t.Fatalf("replica layout without backends: exit %d\n%s", code, out)
	}
	code, out = exec(t, "-root", root, "-backends", t.TempDir(), "-layout", "replica-3", "doctor", "/data")
	if code != 1 || !strings.Contains(out, "needs 3 backends, have 2") {
		t.Fatalf("replica-3 over 2 backends: exit %d\n%s", code, out)
	}
	code, out = exec(t, "-root", root, "-backends", t.TempDir(), "-layout", "bogus", "doctor", "/data")
	if code != 1 || !strings.Contains(out, "unknown layout") {
		t.Fatalf("bogus layout: exit %d\n%s", code, out)
	}
}
