// Command plfsctl inspects and manipulates PLFS containers on a real
// directory tree (the backend, as plfs_map/plfs_flatten_index do for real
// PLFS).
//
//	plfsctl -root /tmp/store info /backend/data        # container summary
//	plfsctl -root /tmp/store index /backend/data       # dump merged index
//	plfsctl -root /tmp/store flatten /backend/data /backend/data.flat
//	plfsctl -root /tmp/store compact /backend/data  # merge index droppings
//	plfsctl -root /tmp/store doctor /backend/data   # flag stale openhosts
//	plfsctl -root /tmp/store -fix doctor /backend/data
//	plfsctl -root /tmp/store rm /backend/data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ldplfs/internal/plfs"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

func main() {
	root := flag.String("root", ".", "host directory backing the tree")
	hostdirs := flag.Int("hostdirs", 32, "hostdir buckets (must match the writer's setting)")
	fix := flag.Bool("fix", false, "doctor: remove the stale openhosts records it finds")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: plfsctl [flags] {info|index|flatten|compact|doctor|rm} CONTAINER [DST]")
		os.Exit(2)
	}

	osfs, err := posix.NewOSFS(*root)
	if err != nil {
		log.Fatalf("plfsctl: root %s: %v", *root, err)
	}
	p := plfs.New(osfs, plfs.Options{NumHostdirs: *hostdirs})
	path := args[1]

	switch args[0] {
	case "info":
		if !p.IsContainer(path) {
			log.Fatalf("plfsctl: %s is not a PLFS container", path)
		}
		st, err := p.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("container:    %s\n", path)
		fmt.Printf("logical size: %d bytes\n", st.Size)
		entries, droppings, err := loadIndex(p, osfs, path)
		if err != nil {
			log.Fatal(err)
		}
		global := idx.Build(entries)
		fmt.Printf("droppings:    %d index, %d entries, %d resolved extents\n",
			droppings, len(entries), global.NumExtents())
	case "index":
		entries, _, err := loadIndex(p, osfs, path)
		if err != nil {
			log.Fatal(err)
		}
		global := idx.Build(entries)
		fmt.Printf("%-12s %-10s %-12s %-6s\n", "logical", "length", "physical", "pid")
		for _, x := range global.Extents() {
			fmt.Printf("%-12d %-10d %-12d %-6d\n", x.LogicalOffset, x.Length, x.PhysicalOffset, x.Pid)
		}
	case "flatten":
		if len(args) != 3 {
			log.Fatal("plfsctl: flatten CONTAINER DST")
		}
		if err := p.Flatten(path, args[2]); err != nil {
			log.Fatal(err)
		}
		st, _ := osfs.Stat(args[2])
		fmt.Printf("flattened %s -> %s (%d bytes)\n", path, args[2], st.Size)
	case "compact":
		before, err := p.IndexDroppings(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.CompactIndex(path); err != nil {
			log.Fatal(err)
		}
		after, _ := p.IndexDroppings(path)
		fmt.Printf("compacted %s: %d -> %d index droppings\n", path, before, after)
	case "doctor":
		// Stale openhosts records are the symptom of a writer that never
		// cleanly closed (a crash, or the historical Trunc(0) leak):
		// they pin Stat on the slow merged-index path and make compact
		// refuse the container, so operators want them surfaced.
		recs, err := p.OpenHosts(path)
		if err != nil {
			log.Fatal(err)
		}
		live, stale := 0, 0
		for _, r := range recs {
			if r.Stale {
				stale++
				fmt.Printf("stale openhosts record: pid %d (no data dropping — writer state lost)\n", r.Pid)
			} else {
				live++
			}
		}
		fmt.Printf("doctor %s: %d openhosts records (%d live, %d stale)\n", path, len(recs), live, stale)
		if stale > 0 {
			if *fix {
				removed, err := p.ScrubOpenHosts(path)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("removed %d stale records; stat fast path and compact restored\n", removed)
			} else {
				fmt.Println("container degraded: stat takes the slow merged-index path and compact is refused")
				fmt.Println("re-run with -fix to clear the stale records")
				os.Exit(1)
			}
		}
	case "rm":
		if err := p.Unlink(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("removed %s\n", path)
	default:
		log.Fatalf("plfsctl: unknown command %q", args[0])
	}
}

// loadIndex reads every index dropping in the container.
func loadIndex(p *plfs.FS, fs posix.FS, path string) ([]idx.Entry, int, error) {
	var entries []idx.Entry
	droppings := 0
	dirs, err := fs.Readdir(path)
	if err != nil {
		return nil, 0, err
	}
	for _, d := range dirs {
		if !d.IsDir || len(d.Name) < 8 || d.Name[:8] != "hostdir." {
			continue
		}
		hostdir := path + "/" + d.Name
		files, err := fs.Readdir(hostdir)
		if err != nil {
			return nil, 0, err
		}
		for _, fe := range files {
			if len(fe.Name) >= 15 && fe.Name[:15] == "dropping.index." {
				es, err := idx.ReadDropping(fs, hostdir+"/"+fe.Name)
				if err != nil {
					return nil, 0, err
				}
				entries = append(entries, es...)
				droppings++
			}
		}
	}
	return entries, droppings, nil
}
