// Command plfsctl inspects and manipulates PLFS containers on a real
// directory tree (the backend, as plfs_map/plfs_flatten_index do for real
// PLFS). With -backends the container's droppings are resolved across a
// striped set of host directories (canonical root first, shadows after),
// which must match the backend list the container was written with.
//
//	plfsctl -root /tmp/store info /backend/data        # container summary
//	plfsctl -root /tmp/store index /backend/data       # dump merged index
//	plfsctl -root /tmp/store flatten /backend/data /backend/data.flat
//	plfsctl -root /tmp/store compact /backend/data  # merge droppings + write flattened index
//	plfsctl -root /tmp/store doctor /backend/data   # openhosts + index health report
//	plfsctl -root /tmp/store -backends /tmp/b1,/tmp/b2 -fix doctor /backend/data
//	plfsctl -root /tmp/store -backends /tmp/b1,/tmp/b2 -layout replica-2 -fix doctor /backend/data
//	plfsctl -root /tmp/store rm /backend/data
//	plfsctl stats                                   # telemetry-plane snapshot demo
//
// compact consolidates the raw index droppings and persists the flattened
// global index record cold opens load in O(extents). doctor reports per-
// container index health — raw dropping and entry counts, flattened
// generation and staleness — and with -fix refreshes or removes a stale
// flattened record (fresh records are always left alone).
//
// With -layout replica-R the backends serve R-way replicated droppings;
// doctor then also scans every replica set, reports missing copies
// (under-replication) and disagreeing copies (divergence), re-replicates
// missing copies under -fix, and rebuilds diverged ones only under
// -fix -force.
//
// stats runs one in-memory harness workload (the MPI-IO Test kernel over
// the direct-PLFS method, 4 ranks) with the unified iostats telemetry
// plane attached to every layer, and dumps the per-layer snapshot: the
// posix backend, the plfs engines, the shared read caches and the
// MPI-IO collective path — the full instrumentation plane from one run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ldplfs/internal/harness"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
	"ldplfs/internal/service/client"
	"ldplfs/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one plfsctl invocation and returns its exit code — split
// from main so the end-to-end tests can drive the tool in-process.
func run(argv []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("plfsctl", flag.ContinueOnError)
	fl.SetOutput(stderr)
	root := fl.String("root", ".", "host directory backing the tree (canonical backend)")
	backends := fl.String("backends", "", "comma-separated extra host directories the container's droppings are striped across")
	hostdirs := fl.Int("hostdirs", 32, "hostdir buckets (must match the writer's setting)")
	layoutDesc := fl.String("layout", "", "placement layout across the backends: mod-n (default) or replica-R")
	fix := fl.Bool("fix", false, "doctor: remove the stale openhosts records it finds and re-replicate missing copies")
	force := fl.Bool("force", false, "doctor -fix: also rebuild diverged replica copies from the longest copy")
	lint := fl.Bool("lint", false, "doctor: also note how to run the repository's static-analysis gate")
	remote := fl.String("remote", "", "plfsd gateway address; stats and doctor run against the live daemon")
	tenant := fl.String("tenant", "default", "tenant name for -remote connections")
	if err := fl.Parse(argv); err != nil {
		return 2
	}
	args := fl.Args()
	// Accept flags after the subcommand too (plfsctl doctor -fix PATH):
	// the stdlib parser stops at the first non-flag word, so re-parse the
	// remainder once the subcommand is known.
	if len(args) > 1 {
		if err := fl.Parse(args[1:]); err != nil {
			return 2
		}
		args = append(args[:1:1], fl.Args()...)
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "plfsctl: "+format+"\n", a...)
		return 1
	}
	if *remote != "" {
		return runRemote(*remote, *tenant, args, *fix, stdout, fail)
	}
	if len(args) >= 1 && args[0] == "stats" {
		return runStats(stdout, fail)
	}
	if len(args) < 2 {
		fmt.Fprintln(stderr, "usage: plfsctl [flags] {info|index|flatten|compact|doctor|rm|stats} CONTAINER [DST]")
		return 2
	}

	osfs, err := posix.NewOSFS(*root)
	if err != nil {
		return fail("root %s: %v", *root, err)
	}
	fs, err := posix.NewStripedRootsLayout(osfs, *backends, *layoutDesc)
	if err != nil {
		return fail("%v", err)
	}
	p := plfs.New(fs, plfs.Options{NumHostdirs: *hostdirs})
	path := args[1]

	switch args[0] {
	case "info":
		if !p.IsContainer(path) {
			return fail("%s is not a PLFS container", path)
		}
		st, err := p.Stat(path)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "container:    %s\n", path)
		fmt.Fprintf(stdout, "logical size: %d bytes\n", st.Size)
		entries, droppings, err := loadIndex(fs, path)
		if err != nil {
			return fail("%v", err)
		}
		global := idx.Build(entries)
		fmt.Fprintf(stdout, "droppings:    %d index, %d entries, %d resolved extents\n",
			droppings, len(entries), global.NumExtents())
		if h, err := p.IndexHealth(path); err == nil && h.Flattened != nil {
			state := "stale"
			if h.Flattened.Fresh {
				state = "fresh"
			}
			fmt.Fprintf(stdout, "flattened:    gen %d, %d extents, %s\n",
				h.Flattened.Generation, h.Flattened.Extents, state)
		}
		if spread, err := p.ContainerSpread(path); err == nil && len(spread) > 1 {
			fmt.Fprintf(stdout, "backends:     %d (droppings per backend: %v)\n", len(spread), spread)
		}
		if desc, err := p.ContainerLayout(path); err != nil {
			fmt.Fprintf(stdout, "layout:       DAMAGED descriptor (%v)\n", err)
		} else if desc != "" {
			fmt.Fprintf(stdout, "layout:       %s\n", desc)
		}
	case "index":
		entries, _, err := loadIndex(fs, path)
		if err != nil {
			return fail("%v", err)
		}
		global := idx.Build(entries)
		fmt.Fprintf(stdout, "%-12s %-10s %-12s %-6s\n", "logical", "length", "physical", "pid")
		for _, x := range global.Extents() {
			fmt.Fprintf(stdout, "%-12d %-10d %-12d %-6d\n", x.LogicalOffset, x.Length, x.PhysicalOffset, x.Pid)
		}
	case "flatten":
		if len(args) != 3 {
			return fail("flatten CONTAINER DST")
		}
		if err := p.Flatten(path, args[2]); err != nil {
			return fail("%v", err)
		}
		st, _ := fs.Stat(args[2])
		fmt.Fprintf(stdout, "flattened %s -> %s (%d bytes)\n", path, args[2], st.Size)
	case "compact":
		before, err := p.IndexDroppings(path)
		if err != nil {
			return fail("%v", err)
		}
		if err := p.CompactIndex(path); err != nil {
			return fail("%v", err)
		}
		after, _ := p.IndexDroppings(path)
		fmt.Fprintf(stdout, "compacted %s: %d -> %d index droppings\n", path, before, after)
		// CompactIndex refreshes the flattened global index as it goes;
		// report what cold readers will now load (or that the flatten
		// failed and they will merge).
		if h, err := p.IndexHealth(path); err == nil {
			if h.Flattened != nil && h.Flattened.Fresh {
				fmt.Fprintf(stdout, "flattened index: gen %d, %d extents (cold opens load it directly)\n",
					h.Flattened.Generation, h.Flattened.Extents)
			} else {
				fmt.Fprintln(stdout, "flattened index: none (cold opens run the streaming merge)")
			}
		}
	case "doctor":
		// -lint: doctor diagnoses containers; the invariants of the code
		// that writes them have their own checker. Surface it here because
		// doctor is where operators already look when something is off.
		if *lint {
			fmt.Fprintln(stdout, "lint: container checks below cover on-disk state; for the data-path invariants run `go run ./cmd/plfslint ./...` (catalogue: internal/analysis/doc.go)")
		}
		// Stale openhosts records are the symptom of a writer that never
		// cleanly closed (a crash, or the historical Trunc(0) leak):
		// they pin Stat on the slow merged-index path and make compact
		// refuse the container, so operators want them surfaced. The
		// liveness check consults whichever backend owns each writer's
		// dropping, so records for writers on shadow backends are
		// diagnosed correctly.
		recs, err := p.OpenHosts(path)
		if err != nil {
			return fail("%v", err)
		}
		live, stale := 0, 0
		for _, r := range recs {
			if r.Stale {
				stale++
				fmt.Fprintf(stdout, "stale openhosts record: pid %d (no data dropping — writer state lost)\n", r.Pid)
			} else {
				live++
			}
		}
		fmt.Fprintf(stdout, "doctor %s: %d openhosts records (%d live, %d stale)\n", path, len(recs), live, stale)
		if spread, err := p.ContainerSpread(path); err == nil && len(spread) > 1 {
			fmt.Fprintf(stdout, "backends: %d (droppings per backend: %v)\n", len(spread), spread)
		}
		// Index health: what a cold open costs today. A fresh flattened
		// record is left strictly alone, fixed or not; a stale one is
		// refreshed (no live writers) or removed (it can never become
		// fresh again) only under -fix.
		h, err := p.IndexHealth(path)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "index: %d droppings, %d raw entries\n", h.IndexDroppings, h.RawEntries)
		switch {
		case h.Flattened == nil:
			fmt.Fprintln(stdout, "flattened index: none (cold opens run the streaming merge)")
		case h.Flattened.Err != nil:
			fmt.Fprintf(stdout, "flattened index: gen %d DAMAGED (%v); readers fall back to the merge\n",
				h.Flattened.Generation, h.Flattened.Err)
		case h.Flattened.Fresh:
			fmt.Fprintf(stdout, "flattened index: gen %d, %d extents, fresh\n",
				h.Flattened.Generation, h.Flattened.Extents)
		default:
			fmt.Fprintf(stdout, "flattened index: gen %d STALE (raw droppings or live writers are newer); readers fall back to the merge\n",
				h.Flattened.Generation)
		}
		if stale > 0 {
			if *fix {
				removed, err := p.ScrubOpenHosts(path)
				if err != nil {
					return fail("%v", err)
				}
				fmt.Fprintf(stdout, "removed %d stale records; stat fast path and compact restored\n", removed)
			} else {
				fmt.Fprintln(stdout, "container degraded: stat takes the slow merged-index path and compact is refused")
				fmt.Fprintln(stdout, "re-run with -fix to clear the stale records")
				return 1
			}
		}
		// Flattened repair runs after the openhosts scrub, against a
		// re-taken health snapshot: a record that looked stale only
		// because dead writers' openhosts records pinned OpenWriters may
		// now be fresh again (nothing to do), and a genuinely stale one
		// can be refreshed rather than dropped.
		if *fix {
			if stale > 0 {
				if h, err = p.IndexHealth(path); err != nil {
					return fail("%v", err)
				}
			}
			if h.Flattened != nil && !h.Flattened.Fresh {
				if h.OpenWriters == 0 {
					info, err := p.WriteFlattenedIndex(path)
					if err != nil {
						return fail("refresh flattened index: %v", err)
					}
					fmt.Fprintf(stdout, "refreshed flattened index to gen %d (%d extents)\n", info.Generation, info.Extents)
				} else {
					removed, err := p.DropFlattenedIndex(path)
					if err != nil {
						return fail("remove stale flattened records: %v", err)
					}
					fmt.Fprintf(stdout, "removed %d stale flattened record(s); writers are live, re-run compact after they close\n", removed)
				}
			}
		}
		// Replication health: only meaningful when this invocation runs a
		// replica layout over the backends (-layout replica-R). Missing
		// copies re-replicate under -fix; diverged copies — replicas that
		// disagree, a backend death mid-write — are refused without
		// -force, because overwriting one destroys forensic state.
		rh, err := p.ReplicationHealth(path)
		if err != nil {
			return fail("%v", err)
		}
		if rh.Width > 1 {
			fmt.Fprintf(stdout, "replication: %s, %d files, %d under-replicated, %d diverged\n",
				rh.Configured, rh.Files, rh.UnderReplicated, rh.Diverged)
			if rh.DescriptorErr != "" {
				fmt.Fprintf(stdout, "layout descriptor DAMAGED: %s\n", rh.DescriptorErr)
			} else if rh.Descriptor != "" && rh.Descriptor != rh.Configured {
				fmt.Fprintf(stdout, "layout descriptor mismatch: container records %s, running %s\n",
					rh.Descriptor, rh.Configured)
			}
			for _, prob := range rh.Problems {
				state := "under-replicated"
				if prob.Diverged {
					state = "DIVERGED"
				}
				fmt.Fprintf(stdout, "  %s: %s (want %d copies:", prob.Path, state, prob.Want)
				for _, c := range prob.Copies {
					if c.Missing {
						fmt.Fprintf(stdout, " b%d=missing", c.Backend)
					} else {
						fmt.Fprintf(stdout, " b%d=%d", c.Backend, c.Size)
					}
				}
				fmt.Fprintln(stdout, ")")
			}
			if !rh.Clean() {
				if !*fix {
					fmt.Fprintln(stdout, "re-run with -fix to re-replicate missing copies")
					return 1
				}
				rep, err := p.RepairReplication(path, *force)
				if err != nil {
					return fail("re-replicate: %v", err)
				}
				fmt.Fprintf(stdout, "re-replicated %d cop(ies), skipped %d diverged file(s)\n", rep.Repaired, rep.Skipped)
				if rep.Skipped > 0 {
					fmt.Fprintln(stdout, "diverged copies left untouched; re-run with -fix -force to rebuild them from the longest copy")
					return 1
				}
				if rh, err = p.ReplicationHealth(path); err != nil {
					return fail("%v", err)
				}
				if !rh.Clean() {
					return fail("container still unhealthy after repair")
				}
				fmt.Fprintln(stdout, "replication restored: every file at full copy count")
			}
		}
	case "rm":
		if err := p.Unlink(path); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "removed %s\n", path)
	default:
		return fail("unknown command %q", args[0])
	}
	return 0
}

// runRemote executes stats/doctor against a live plfsd daemon: stats
// fetches the gateway's telemetry-plane snapshot, doctor runs the
// container health report (with -fix, repairs) through the daemon's
// own PLFS instance — the mount path is the client-visible one.
func runRemote(addr, tenant string, args []string, fix bool, stdout io.Writer, fail func(string, ...any) int) int {
	if len(args) < 1 {
		return fail("-remote needs a command: stats | doctor PATH")
	}
	conn, err := client.Dial(addr, tenant)
	if err != nil {
		return fail("%v", err)
	}
	defer conn.Close()
	switch args[0] {
	case "stats":
		text, err := conn.Stats()
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprint(stdout, text)
	case "doctor":
		if len(args) != 2 {
			return fail("doctor PATH")
		}
		report, err := conn.Doctor(args[1], fix)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprint(stdout, report)
	default:
		return fail("command %q does not support -remote (want stats or doctor)", args[0])
	}
	return 0
}

// runStats drives one small harness workload with every layer wired to
// a single telemetry plane, then dumps the plane: a self-contained
// demonstration (and e2e test fixture) that the whole stack reports
// through one Collector — posix backend, plfs engines, readcache,
// mpiio.
func runStats(stdout io.Writer, fail func(string, ...any) int) int {
	plane := iostats.NewPlane()
	store := harness.Instrument(harness.NewStore(), plane)
	popts := plfs.DefaultOptions()
	popts.Stats = plane
	hints := mpiio.DefaultHints()
	hints.Collector = plane
	cfg := workload.MPIIOTestConfig{
		BytesPerProc: 1 << 20,
		BlockSize:    128 << 10,
		Verify:       true,
		Hints:        hints,
	}
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverForOpts("romio", store, r.Rank(), popts)
		if err != nil {
			panic(err)
		}
		if _, err := workload.RunMPIIOTest(r, drv, pathFor("stats-probe.out"), cfg); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return fail("stats probe workload: %v", err)
	}
	fmt.Fprintln(stdout, "iostats snapshot (mpiio-test kernel, 4 ranks, direct-PLFS method, in-memory store)")
	fmt.Fprintln(stdout)
	plane.Snapshot().Format(stdout)
	return 0
}

// loadIndex reads every index dropping in the container; through a
// striped fs the container listing merges hostdirs from all backends.
func loadIndex(fs posix.FS, path string) ([]idx.Entry, int, error) {
	var entries []idx.Entry
	droppings := 0
	dirs, err := fs.Readdir(path)
	if err != nil {
		return nil, 0, err
	}
	for _, d := range dirs {
		if !d.IsDir || !strings.HasPrefix(d.Name, "hostdir.") {
			continue
		}
		hostdir := path + "/" + d.Name
		files, err := fs.Readdir(hostdir)
		if err != nil {
			return nil, 0, err
		}
		for _, fe := range files {
			if strings.HasPrefix(fe.Name, "dropping.index.") {
				es, err := idx.ReadDropping(fs, hostdir+"/"+fe.Name)
				if err != nil {
					return nil, 0, err
				}
				entries = append(entries, es...)
				droppings++
			}
		}
	}
	return entries, droppings, nil
}
