package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const knownbad = "../../internal/analysis/plfslint/testdata/src/knownbad"

func TestListAnalyzers(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("-list: exit %d, stderr: %s", code, errs.String())
	}
	for _, name := range []string{"nilcollector", "lockorder", "errnopreserve", "clockinject", "atomicfield"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestNoPatternsIsUsageError(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run(nil, &out, &errs); code != 2 {
		t.Fatalf("no patterns: exit %d, want 2", code)
	}
}

// The known-bad fixture must make the real binary fail. Only the
// globally-scoped analyzers apply at its import path, which also pins
// that scoping holds end to end: the fixture's wall-clock call and
// lock inversion stay silent because they are outside clockinject's
// and lockorder's declared packages.
func TestKnownBadFails(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-allowlist", os.DevNull, knownbad}, &out, &errs)
	if code != 1 {
		t.Fatalf("knownbad: exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
	for _, want := range []string{
		"possibly-nil *ldplfs/internal/iostats.Plane",
		"plain access of gen",
		"stale plfslint:ignore comment",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("knownbad output missing %q:\n%s", want, out.String())
		}
	}
	for _, silent := range []string{"(clockinject)", "(lockorder)", "(errnopreserve)"} {
		if strings.Contains(out.String(), silent) {
			t.Errorf("scoped analyzer fired outside its scope: %s\n%s", silent, out.String())
		}
	}
}

// TestTreeClean is the e2e acceptance check: the multichecker over the
// whole module, with the checked-in allowlist, exits clean.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint")
	}
	var out, errs bytes.Buffer
	if code := run([]string{"ldplfs/..."}, &out, &errs); code != 0 {
		t.Fatalf("plfslint over the tree: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
}
