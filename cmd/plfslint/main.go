// Command plfslint is the repository's multichecker: six
// project-specific static analyzers that mechanically enforce the
// data-path invariants PRs 1-9 established (lock ranking, errno
// preservation, clock injection, typed-nil interface safety, atomic
// field access, pooled-buffer hygiene). CI runs it as a blocking job:
//
//	go run ./cmd/plfslint ./...
//
// Exit status: 0 = clean, 1 = findings, 2 = usage or load failure.
// Suppressions are inline `//plfslint:ignore <analyzer> <reason>`
// comments, each of which must be covered by an entry in the
// checked-in plfslint.allow at the module root — an ignore without an
// allowlist entry, a stale ignore, and a stale allowlist entry are all
// findings themselves. See internal/analysis/doc.go for the invariant
// catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ldplfs/internal/analysis/plfslint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("plfslint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	list := fl.Bool("list", false, "list the analyzers and exit")
	allowlist := fl.String("allowlist", "", "suppression allowlist path (default: plfslint.allow at the module root)")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: plfslint [-list] [-allowlist file] packages...\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range plfslint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		fl.Usage()
		return 2
	}
	allow := *allowlist
	if allow == "" {
		if root, err := findModuleRoot(); err == nil {
			if p := filepath.Join(root, plfslint.AllowlistName); exists(p) {
				allow = p
			}
		}
	}
	d := plfslint.NewDriver(allow, stdout)
	findings, err := d.Run(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "plfslint: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "plfslint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		if exists(filepath.Join(d, "go.mod")) {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
	}
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
