// Command benchfigs regenerates every table and figure of the paper's
// evaluation section from the calibrated platform models.
//
// Usage:
//
//	benchfigs -all
//	benchfigs -fig 3        # Fig. 3: MPI-IO Test grid on Minerva
//	benchfigs -fig 4        # Fig. 4: NAS BT classes C and D on Sierra
//	benchfigs -fig 5        # Fig. 5: FLASH-IO weak scaling on Sierra
//	benchfigs -table 1      # Table I: platform inventories
//	benchfigs -table 2      # Table II: UNIX tools over a 4 GB file
//	benchfigs -summary      # headline claims derived from the models
//	benchfigs -ablation     # design-choice sweeps (cache, MDS, FUSE, variants)
package main

import (
	"flag"
	"fmt"
	"os"

	"ldplfs/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3, 4 or 5)")
	table := flag.Int("table", 0, "table to regenerate (1 or 2)")
	summary := flag.Bool("summary", false, "print the derived headline claims")
	ablation := flag.Bool("ablation", false, "print the design-choice ablation studies")
	all := flag.Bool("all", false, "regenerate everything in paper order")
	flag.Parse()

	switch {
	case *all:
		fmt.Print(bench.All())
	case *fig == 3:
		fmt.Print(bench.Fig3())
	case *fig == 4:
		fmt.Print(bench.Fig4())
	case *fig == 5:
		fmt.Print(bench.Fig5())
	case *table == 1:
		fmt.Print(bench.TableI())
	case *table == 2:
		fmt.Print(bench.TableII())
	case *summary:
		fmt.Print(bench.Summary())
	case *ablation:
		fmt.Print(bench.Ablations())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
