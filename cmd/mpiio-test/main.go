// Command mpiio-test runs the LANL MPI-IO Test kernel over the in-process
// MPI runtime with any of the paper's four access methods, and reports
// measured (wall-clock) write/read bandwidth on the functional stack.
//
//	mpiio-test -np 8 -ppn 2 -method ldplfs -size 8388608 -block 1048576
//	mpiio-test -np 4 -remote localhost:7725 -tenant batch
//
// With -remote the kernel runs against a plfsd gateway instead of an
// in-process store: each rank dials its own connection (one gateway
// session, one PLFS pid) and the collective structure is unchanged.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ldplfs/internal/harness"
	"ldplfs/internal/harness/flags"
	"ldplfs/internal/mpi"
	"ldplfs/internal/workload"
)

func main() {
	var job flags.Job
	var ptune flags.Plfs
	var mio flags.MPIIO
	var remote flags.Remote
	job.Register(flag.CommandLine, 8, "ldplfs")
	ptune.Register(flag.CommandLine)
	mio.Register(flag.CommandLine)
	remote.Register(flag.CommandLine)
	size := flag.Int64("size", 8<<20, "bytes per process")
	block := flag.Int64("block", 1<<20, "block size per collective call")
	nn := flag.Bool("nn", false, "N-N write phase: each rank writes its own file (default: strided N-1)")
	flag.Parse()

	plane := ptune.NewPlane()
	store := harness.NewStoreN(job.Backends)
	cfg := workload.MPIIOTestConfig{
		BytesPerProc: *size,
		BlockSize:    *block,
		FilePerProc:  *nn,
		Verify:       job.Verify,
		Hints:        mio.Hints(),
	}
	if plane != nil {
		store = harness.Instrument(store, plane)
		cfg.Hints.Collector = plane
	}
	popts := ptune.Options(plane)

	start := time.Now()
	var wrote, read int64
	err := mpi.Run(job.NP, job.PPN, func(r *mpi.Rank) {
		drv, pathFor, err := harness.RankDriver(&remote, job.Method, store, r.Rank(), popts...)
		if err != nil {
			panic(err)
		}
		res, err := workload.RunMPIIOTest(r, drv, pathFor("mpiio-test.out"), cfg)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * int64(r.Size())
			read = res.BytesRead * int64(r.Size())
		}
	})
	if err != nil {
		if plane != nil {
			// log.Fatal skips defers; a failing run is exactly when the
			// per-layer snapshot matters, so dump it first.
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	shape := "n-1 strided"
	if *nn {
		shape = "n-n file-per-proc"
	}
	fmt.Printf("mpiio-test: method=%s shape=%s np=%d ppn=%d wrote=%d read=%d in %.3fs (%.1f MB/s end-to-end)\n",
		job.Method, shape, job.NP, job.PPN, wrote, read, elapsed, float64(wrote+read)/elapsed/1e6)
	if job.Verify {
		fmt.Println("verification: OK (every rank validated its neighbour's blocks)")
	}
	if plane != nil {
		fmt.Fprint(os.Stderr, plane.Snapshot().String())
	}
}
