// Command mpiio-test runs the LANL MPI-IO Test kernel over the in-process
// MPI runtime with any of the paper's four access methods, and reports
// measured (wall-clock) write/read bandwidth on the functional stack.
//
//	mpiio-test -np 8 -ppn 2 -method ldplfs -size 8388608 -block 1048576
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ldplfs/internal/harness"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/workload"
)

func main() {
	np := flag.Int("np", 8, "number of ranks")
	ppn := flag.Int("ppn", 2, "processes per node")
	method := flag.String("method", "ldplfs", "access method: mpiio|fuse|romio|ldplfs")
	size := flag.Int64("size", 8<<20, "bytes per process")
	block := flag.Int64("block", 1<<20, "block size per collective call")
	nn := flag.Bool("nn", false, "N-N write phase: each rank writes its own file (default: strided N-1)")
	backends := flag.Int("backends", 1, "stripe the store over this many backends (hostdirs spread across them; 1 = single backend)")
	indexBatch := flag.Int("index-batch", 0, "PLFS index group-flush threshold in records (0 = default, <0 = flush only on sync)")
	writeWorkers := flag.Int("write-workers", 0, "PLFS parallel pwrites per vectored write (0 = default)")
	stats := flag.Bool("stats", false, "attach the iostats telemetry plane to every layer and dump a snapshot at exit")
	autotune := flag.Bool("autotune", false, "let the PLFS feedback controller adapt ReadWorkers/WriteWorkers/IndexBatch online")
	verify := flag.Bool("verify", true, "read back and verify")
	flag.Parse()

	var plane *iostats.Plane
	if *stats {
		plane = iostats.NewPlane()
	}
	store := harness.NewStoreN(*backends)
	cfg := workload.MPIIOTestConfig{
		BytesPerProc: *size,
		BlockSize:    *block,
		FilePerProc:  *nn,
		Verify:       *verify,
		Hints:        mpiio.DefaultHints(),
	}
	popts := plfs.DefaultOptions()
	popts.IndexBatch = *indexBatch
	popts.WriteWorkers = *writeWorkers
	popts.AutoTune = *autotune
	if plane != nil {
		store = harness.Instrument(store, plane)
		cfg.Hints.Collector = plane
		popts.Stats = plane
	}

	start := time.Now()
	var wrote, read int64
	err := mpi.Run(*np, *ppn, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverForOpts(*method, store, r.Rank(), popts)
		if err != nil {
			panic(err)
		}
		res, err := workload.RunMPIIOTest(r, drv, pathFor("mpiio-test.out"), cfg)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * int64(r.Size())
			read = res.BytesRead * int64(r.Size())
		}
	})
	if err != nil {
		if plane != nil {
			// log.Fatal skips defers; a failing run is exactly when the
			// per-layer snapshot matters, so dump it first.
			fmt.Fprint(os.Stderr, plane.Snapshot().String())
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	shape := "n-1 strided"
	if *nn {
		shape = "n-n file-per-proc"
	}
	fmt.Printf("mpiio-test: method=%s shape=%s np=%d ppn=%d wrote=%d read=%d in %.3fs (%.1f MB/s end-to-end)\n",
		*method, shape, *np, *ppn, wrote, read, elapsed, float64(wrote+read)/elapsed/1e6)
	if *verify {
		fmt.Println("verification: OK (every rank validated its neighbour's blocks)")
	}
	if plane != nil {
		fmt.Fprint(os.Stderr, plane.Snapshot().String())
	}
}
