// Quickstart: load LDPLFS into a process and use plain POSIX calls on a
// PLFS mount — no application changes, no FUSE, no MPI rebuild.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ldplfs/internal/core"
	"ldplfs/internal/posix"
)

func main() {
	// The "machine": an in-memory POSIX file system with a directory that
	// will hold PLFS containers.
	system := posix.NewMemFS()
	if err := system.Mkdir("/backend", 0o755); err != nil {
		log.Fatal(err)
	}

	// The "process": a symbol table bound to the system, exactly what the
	// dynamic loader gives a freshly exec'd binary.
	proc := posix.NewDispatch(system)

	// export LDPLFS_MNT=/mnt/plfs=/backend && LD_PRELOAD=libldplfs.so
	shim, err := core.Preload(proc, core.Config{
		Mounts: []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:    1234,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The application is ordinary POSIX code.
	fd, err := proc.Open("/mnt/plfs/results.dat", posix.O_CREAT|posix.O_RDWR, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proc.Write(fd, []byte("hello from a log-structured container\n")); err != nil {
		log.Fatal(err)
	}
	proc.Lseek(fd, 0, posix.SEEK_SET)
	buf := make([]byte, 64)
	n, err := proc.Read(fd, buf)
	if err != nil {
		log.Fatal(err)
	}
	proc.Close(fd)
	fmt.Printf("read back: %q\n", buf[:n])

	// What actually hit the disk: a container directory, not a file.
	st, _ := system.Stat("/backend/results.dat")
	fmt.Printf("backend entry is a directory: %v (PLFS container)\n", st.IsDir())
	entries, _ := system.Readdir("/backend/results.dat")
	for _, e := range entries {
		fmt.Printf("  container member: %s\n", e.Name)
	}
	fmt.Printf("shim stats: %d calls interposed, %d passed through\n",
		shim.Stats.Interposed.Load(), shim.Stats.PassedThru.Load())
}
