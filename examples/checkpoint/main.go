// Parallel checkpointing through LDPLFS: a FLASH-style application writes
// HDF5 checkpoints collectively, each checkpoint becoming a PLFS
// container; the example then verifies one and flattens it back to a
// plain file for archiving.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"ldplfs/internal/harness"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/workload"
)

func main() {
	store := harness.NewStore()
	cfg := workload.FlashIOConfig{
		NXB:     8,
		NBlocks: 4,
		NVars:   8,
		Hints:   mpiio.DefaultHints(),
	}
	fmt.Printf("checkpointing ~%.2f MB per process across 3 HDF5 files\n",
		float64(cfg.BytesPerProcess())/1e6)

	var files []string
	err := mpi.Run(8, 4, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
		if err != nil {
			panic(err)
		}
		res, err := workload.RunFlashIO(r, drv, pathFor("sim"), cfg)
		if err != nil {
			panic(err)
		}
		// Every rank verifies the checkpoint file before declaring success
		// — a checkpoint you cannot restore is not a checkpoint.
		if err := workload.VerifyFlashFile(r, drv, res.Files[0], cfg, 0); err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			files = res.Files
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint written and verified:")
	for _, f := range files {
		fmt.Println("  ", f)
	}

	// Post-processing: flatten the checkpoint container into an ordinary
	// file (what plfsctl flatten does), e.g. for tape archiving.
	p := plfs.New(store, plfs.DefaultOptions())
	src := harness.BackendDir + "/sim_hdf5_chk_0001"
	dst := harness.ScratchDir + "/sim_chk_0001.h5"
	if err := p.Flatten(src, dst); err != nil {
		log.Fatal(err)
	}
	st, _ := store.Stat(dst)
	cst, _ := p.Stat(src)
	fmt.Printf("flattened %s (%d logical bytes) -> %s (%d bytes)\n", src, cst.Size, dst, st.Size)
	if st.Size != cst.Size {
		log.Fatal("flatten size mismatch")
	}
	fmt.Println("archive copy ready.")
}
