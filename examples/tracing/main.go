// Tracing under LDPLFS: the paper's footnote notes that other preload
// libraries (tracing tools) can be stacked with LDPLFS in LD_PRELOAD.
// This example loads an I/O recorder *below* the shim, runs the same
// checkpoint twice — once rerouted to PLFS, once plain — and prints what
// the storage system actually saw, making the paper's mechanisms
// (per-process droppings, metadata storms) directly observable.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"

	"ldplfs/internal/core"
	"ldplfs/internal/iotrace"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/posix"
	"ldplfs/internal/workload"
)

func runTraced(usePLFS bool) iotrace.Summary {
	mem := posix.NewMemFS()
	for _, d := range []string{"/scratch", "/backend"} {
		mem.Mkdir(d, 0o755)
	}
	rec := iotrace.Wrap(mem) // the "tracer" preload, below everything

	cfg := workload.FlashIOConfig{NXB: 6, NBlocks: 4, NVars: 8, Hints: mpiio.DefaultHints()}
	err := mpi.Run(8, 4, func(r *mpi.Rank) {
		// Every rank's process: tracer first, then (optionally) LDPLFS —
		// two entries in LD_PRELOAD, innermost loaded first.
		d := posix.NewDispatch(rec)
		base := "/scratch/run"
		if usePLFS {
			if _, err := core.Preload(d, core.Config{
				Mounts: []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
				Pid:    uint32(r.Rank()),
			}); err != nil {
				panic(err)
			}
			base = "/mnt/plfs/run"
		}
		if _, err := workload.RunFlashIO(r, mpiio.NewUFS(d), base, cfg); err != nil {
			panic(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return iotrace.Summarize(rec.Events())
}

func main() {
	plain := runTraced(false)
	plfs := runTraced(true)

	fmt.Println("What the storage backend saw for one FLASH-IO checkpoint (8 ranks, 3 files):")
	fmt.Printf("%-28s %12s %12s\n", "", "plain MPI-IO", "via LDPLFS")
	row := func(name string, a, b any) { fmt.Printf("%-28s %12v %12v\n", name, a, b) }
	row("file creates", plain.FileCreates, plfs.FileCreates)
	row("  of which droppings", 0, plfs.DroppingFiles)
	row("directory creates", plain.DirCreates, plfs.DirCreates)
	row("distinct files written", plain.WriteStreams, plfs.WriteStreams)
	row("write calls", plain.WriteCalls, plfs.WriteCalls)
	row("median write size (bytes)", plain.MedianWrite, plfs.MedianWrite)
	row("metadata ops", plain.MetaOps, plfs.MetaOps)

	fmt.Println()
	fmt.Println("The per-process dropping explosion on the right is exactly the load that")
	fmt.Println("melts the Lustre MDS in Figure 5 — here measured, not modelled.")
}
