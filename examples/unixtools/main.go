// UNIX tools over PLFS containers without FUSE — the paper's Section
// III-D demonstration. A parallel job writes a container; afterwards
// ordinary cp/cat/grep/md5sum (dynamically "relinked" with LDPLFS)
// extract the data.
//
//	go run ./examples/unixtools
package main

import (
	"fmt"
	"log"
	"strings"

	"ldplfs/internal/core"
	"ldplfs/internal/harness"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/posix"
	"ldplfs/internal/unixtools"
)

func main() {
	store := harness.NewStore()

	// Phase 1: a 4-rank MPI job writes a shared "visualisation dump"
	// through LDPLFS. Each rank contributes one line region.
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
		if err != nil {
			panic(err)
		}
		fh, err := mpiio.Open(r, drv, pathFor("dump.txt"), mpiio.ModeCreate|mpiio.ModeRdwr, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		line := fmt.Sprintf("rank %d: field=%08.3f marker=%s\n", r.Rank(), float64(r.Rank())*3.25, strings.Repeat("x", 8))
		if _, err := fh.WriteAtAll([]byte(line), int64(r.Rank())*int64(len(line))); err != nil {
			panic(err)
		}
		if err := fh.Close(); err != nil {
			panic(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: post-processing with standard tools. A fresh "login shell"
	// process preloads LDPLFS via the environment-variable path.
	shell := posix.NewDispatch(store)
	cfg, err := core.ConfigFromEnv(func(k string) string {
		if k == core.EnvMounts {
			return harness.MountPoint + "=" + harness.BackendDir
		}
		return ""
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.Preload(shell, cfg); err != nil {
		log.Fatal(err)
	}

	fmt.Println("$ ls /mnt/plfs")
	names, _ := unixtools.Ls(shell, "/mnt/plfs")
	for _, n := range names {
		fmt.Println(" ", n)
	}

	fmt.Println("\n$ cat /mnt/plfs/dump.txt")
	var out strings.Builder
	if _, err := unixtools.Cat(shell, "/mnt/plfs/dump.txt", &out); err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.String())

	fmt.Println("\n$ grep 'rank 2' /mnt/plfs/dump.txt")
	matches, _ := unixtools.Grep(shell, "rank 2", "/mnt/plfs/dump.txt")
	for _, m := range matches {
		fmt.Printf("  %d:%s\n", m.LineNo, m.Line)
	}

	fmt.Println("\n$ cp /mnt/plfs/dump.txt /scratch/dump.flat && md5sum both")
	if _, err := unixtools.Cp(shell, "/mnt/plfs/dump.txt", "/scratch/dump.flat"); err != nil {
		log.Fatal(err)
	}
	sumContainer, _ := unixtools.Md5sum(shell, "/mnt/plfs/dump.txt")
	sumFlat, _ := unixtools.Md5sum(shell, "/scratch/dump.flat")
	fmt.Printf("  %s  /mnt/plfs/dump.txt (container)\n", sumContainer)
	fmt.Printf("  %s  /scratch/dump.flat (plain file)\n", sumFlat)
	if sumContainer != sumFlat {
		log.Fatal("digests differ!")
	}
	fmt.Println("\ndigests match: raw data extracted from PLFS without FUSE.")
}
