// Scaling study: sweep the paper's workloads across methods and scales on
// the Sierra model, locate the PLFS/MPI-IO crossover, and show why the
// paper warns that PLFS "can actually harm performance at scale".
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"ldplfs/internal/fsim"
)

func main() {
	sierra := fsim.Sierra()

	fmt.Println("FLASH-IO weak scaling on the Sierra/Lustre model (MB/s):")
	fmt.Printf("%8s %10s %10s %10s %12s\n", "cores", "MPI-IO", "LDPLFS", "ratio", "verdict")
	series := sierra.FlashSeries(fsim.Fig5Cores)
	peakIdx := 0
	for i, v := range series[fsim.LDPLFS] {
		if v > series[fsim.LDPLFS][peakIdx] {
			peakIdx = i
		}
	}
	crossover := -1
	for i, c := range fsim.Fig5Cores {
		mpiio := series[fsim.MPIIO][i]
		ldplfs := series[fsim.LDPLFS][i]
		verdict := "PLFS wins"
		if ldplfs < mpiio {
			verdict = "PLFS HURTS"
			// The interesting crossover is the post-peak one, where scale
			// (not startup overheads) turns PLFS against the application.
			if crossover < 0 && i > peakIdx {
				crossover = c
			}
		}
		fmt.Printf("%8d %10.0f %10.0f %9.1fx %12s\n", c, mpiio, ldplfs, ldplfs/mpiio, verdict)
	}
	if crossover > 0 {
		fmt.Printf("\ncrossover: beyond ~%d cores the per-process file explosion\n", crossover)
		fmt.Println("saturates the Lustre MDS and per-stream management; plain MPI-IO wins.")
	}

	fmt.Println("\nBT class D strong scaling (the write-size cache cliff):")
	fmt.Printf("%8s %14s %10s %10s\n", "cores", "write/proc", "MPI-IO", "LDPLFS")
	bt := sierra.BTSeries(fsim.BTClassD, fsim.Fig4bCores)
	for i, c := range fsim.Fig4bCores {
		perProc := fsim.BTClassD.TotalBytes / int64(fsim.BTClassD.Steps) / int64(c)
		cached := ""
		if perProc <= sierra.CacheThreshold {
			cached = " (cache-absorbed)"
		}
		fmt.Printf("%8d %11.1f MB %10.0f %10.0f%s\n",
			c, float64(perProc)/1e6, bt[fsim.MPIIO][i], bt[fsim.LDPLFS][i], cached)
	}

	fmt.Println("\nAdvice derived from the model:")
	for _, probe := range []struct {
		cores int
		job   string
	}{{192, "FLASH-IO checkpoint"}, {3072, "FLASH-IO checkpoint"}} {
		f := sierra.FlashBandwidth(fsim.DefaultFlash(probe.cores, fsim.LDPLFS))
		m := sierra.FlashBandwidth(fsim.DefaultFlash(probe.cores, fsim.MPIIO))
		rec := "enable LDPLFS"
		if f < m {
			rec = "leave PLFS off"
		}
		fmt.Printf("  %s at %d cores: %s (%.0f vs %.0f MB/s)\n", probe.job, probe.cores, rec, f, m)
	}
}
